"""Shared ergonomics for the public config dataclasses.

Every public config (:class:`~repro.core.bp.BPConfig`,
:class:`~repro.core.klau.KlauConfig`,
:class:`~repro.core.isorank.IsoRankConfig`,
:class:`~repro.accel.config.ParallelConfig`,
:class:`~repro.multilevel.vcycle.MultilevelConfig`) mixes in
:class:`ConfigBase`, which gives them one uniform serialization surface:

* :meth:`ConfigBase.to_dict` — a flat, JSON-serializable dict of every
  dataclass field (configs hold only scalars by design);
* :meth:`ConfigBase.from_dict` — the strict inverse: unknown keys raise
  :class:`~repro.errors.ConfigurationError` instead of being silently
  dropped, so a typo in a config file fails loudly.

``from_dict(to_dict(cfg)) == cfg`` holds for every config (frozen
dataclass equality), which is what the CLI's ``--config`` flag and
``benchmarks/run_bench.py`` rely on to record exactly the configuration
that produced a benchmark row.

All configs also accept a ``seed`` field through this surface.  The
iterative solvers are deterministic, so for them ``seed`` is carried
(and round-tripped, and recorded in benchmark provenance) but not
consumed; stochastic components read it where randomness exists.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, TypeVar

from repro.errors import ConfigurationError

__all__ = ["ConfigBase"]

C = TypeVar("C", bound="ConfigBase")


class ConfigBase:
    """Mixin giving config dataclasses ``to_dict``/``from_dict``."""

    def to_dict(self) -> dict[str, Any]:
        """Return a flat dict of every config field.

        Values are the scalars the dataclass holds; the dict is directly
        ``json.dumps``-able (non-finite floats use Python's ``Infinity``
        extension, which ``json.loads`` reads back).
        """
        if not dataclasses.is_dataclass(self):
            raise ConfigurationError(
                f"{type(self).__name__} is not a dataclass config"
            )
        return {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
        }

    @classmethod
    def from_dict(cls: type[C], mapping: Mapping[str, Any]) -> C:
        """Construct from a dict produced by :meth:`to_dict`.

        Unknown keys raise :class:`~repro.errors.ConfigurationError`
        (with the valid field names in the message); missing keys fall
        back to the dataclass defaults.
        """
        if not dataclasses.is_dataclass(cls):
            raise ConfigurationError(
                f"{cls.__name__} is not a dataclass config"
            )
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(mapping) - names)
        if unknown:
            raise ConfigurationError(
                f"unknown {cls.__name__} fields {unknown}; "
                f"valid fields: {sorted(names)}"
            )
        return cls(**dict(mapping))
