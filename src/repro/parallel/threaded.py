"""``threading``-based parallel-for and locally-dominant matcher.

Faithful to the paper's parallel structure — chunked dynamic scheduling,
per-vertex FindMate/MatchVertex with an atomically updated queue — but
executed by real CPython threads.  The GIL admits only one thread into
the interpreter at a time, so throughput is flat in the thread count;
that measurement (see ``bench_gil_reality``) is the reproduction gate
this library's machine model works around.
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

from repro._util import asarray_f64
from repro.errors import ConfigurationError
from repro.matching.result import MatchingResult
from repro.sparse.bipartite import BipartiteGraph

__all__ = ["parallel_for_threaded", "threaded_locally_dominant_matching"]


def parallel_for_threaded(
    n_items: int,
    body: Callable[[int, int], None],
    *,
    n_threads: int = 4,
    chunk: int = 1000,
) -> None:
    """Run ``body(start, stop)`` over chunks of ``range(n_items)``.

    Dynamic scheduling: each thread repeatedly claims the next chunk via
    an atomic counter (a lock-protected integer — CPython's equivalent of
    ``__sync_fetch_and_add``).
    """
    if n_threads < 1:
        raise ConfigurationError("n_threads must be >= 1")
    if chunk < 1:
        raise ConfigurationError("chunk must be >= 1")
    next_chunk = 0
    lock = threading.Lock()

    def worker() -> None:
        nonlocal next_chunk
        while True:
            with lock:
                start = next_chunk
                next_chunk += chunk
            if start >= n_items:
                return
            body(start, min(start + chunk, n_items))

    if n_threads == 1:
        worker()
        return
    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def threaded_locally_dominant_matching(
    graph: BipartiteGraph,
    weights: np.ndarray | None = None,
    *,
    n_threads: int = 4,
) -> MatchingResult:
    """Locally-dominant ½-approx matching with real threads (Algorithm 1).

    Vertices are processed by a thread pool in both phases; ``mate`` and
    ``candidate`` updates are guarded by a striped lock array (publishing
    a matched pair must be atomic), and the next-queue append uses the
    counter idiom of §V.  The output matches the serial implementation;
    only the wall-clock (GIL-bound) differs.
    """
    w_vec = graph.weights if weights is None else asarray_f64(weights)
    indptr_np, neighbors_np, half_eid, _ = graph.as_general_graph()
    hw_np = w_vec[half_eid]
    n = graph.n_a + graph.n_b
    indptr = indptr_np.tolist()
    adj = neighbors_np.tolist()
    hw = hw_np.tolist()

    mate = [-1] * n
    candidate = [-1] * n
    n_locks = 64
    locks = [threading.Lock() for _ in range(n_locks)]

    def find_mate(s: int) -> int:
        best_w = 0.0
        best_t = -1
        for k in range(indptr[s], indptr[s + 1]):
            t = adj[k]
            w = hw[k]
            if mate[t] != -1 or w <= 0.0:
                continue
            if w > best_w or (w == best_w and best_t != -1 and t < best_t):
                best_w = w
                best_t = t
        return best_t

    def try_match(s: int, queue: list[int], qlock: threading.Lock) -> None:
        c = candidate[s]
        if c < 0 or mate[s] != -1:
            return
        if candidate[c] != s:
            return
        first, second = sorted((s % n_locks, c % n_locks))
        locks[first].acquire()
        if second != first:
            locks[second].acquire()
        try:
            if mate[s] == -1 and mate[c] == -1 and candidate[c] == s:
                mate[s] = c
                mate[c] = s
                with qlock:
                    queue.append(s)
                    queue.append(c)
        finally:
            if second != first:
                locks[second].release()
            locks[first].release()

    # Phase 1
    q_current: list[int] = []
    qlock = threading.Lock()

    def phase1(start: int, stop: int) -> None:
        for v in range(start, stop):
            candidate[v] = find_mate(v)

    parallel_for_threaded(n, phase1, n_threads=n_threads)

    def phase1b(start: int, stop: int) -> None:
        for v in range(start, stop):
            try_match(v, q_current, qlock)

    parallel_for_threaded(n, phase1b, n_threads=n_threads)

    # Phase 2
    while q_current:
        q_next: list[int] = []

        def phase2(start: int, stop: int) -> None:
            for qi in range(start, stop):
                u = q_current[qi]
                for k in range(indptr[u], indptr[u + 1]):
                    v = adj[k]
                    if mate[v] == -1 and candidate[v] == u:
                        candidate[v] = find_mate(v)
                        try_match(v, q_next, qlock)

        parallel_for_threaded(
            len(q_current), phase2, n_threads=n_threads, chunk=64
        )
        q_current = q_next

    mate_a = np.array(
        [mate[a] - graph.n_a if mate[a] >= 0 else -1
         for a in range(graph.n_a)],
        dtype=np.int64,
    )
    return MatchingResult.from_mates(graph, mate_a, weights=w_vec)
