"""Real-thread parallelism — the honest GIL witness.

This package implements the paper's parallel constructs with *actual*
``threading`` threads.  It exists to measure, not to speed up: CPython's
GIL serializes the fine-grained shared-memory loops the paper
parallelizes, so these implementations scale at ≈1× regardless of thread
count.  The benchmark ``benchmarks/bench_gil_reality.py`` records that
flat curve — it is the empirical justification for reproducing the
paper's scaling study with the trace-driven machine model in
:mod:`repro.machine` instead (DESIGN.md §1).

The backend that *does* deliver real wall-clock speedup lives in
:mod:`repro.accel` (process pools over shared memory); its entry points
are re-exported here so "the parallel layer" has one import surface:

>>> from repro.parallel import ParallelConfig, parallel_map
>>> parallel_map(len, ["ab", "c"], ParallelConfig(backend="serial"))
[2, 1]
"""

from repro.accel.config import ParallelConfig
from repro.accel.pool import parallel_map
from repro.parallel.threaded import (
    parallel_for_threaded,
    threaded_locally_dominant_matching,
)

__all__ = [
    "ParallelConfig",
    "parallel_for_threaded",
    "parallel_map",
    "threaded_locally_dominant_matching",
]
