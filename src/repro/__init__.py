"""netalign-mc-py: network alignment via approximate matching (SC 2012).

A from-scratch Python reproduction of Khan, Gleich, Pothen &
Halappanavar, *"A multithreaded algorithm for network alignment via
approximate matching"* (SC 2012): the belief-propagation and Klau
matching-relaxation alignment heuristics, exact and locally-dominant
½-approximate bipartite matching, the paper's problem families, and a
trace-driven simulated NUMA machine reproducing its strong-scaling study.

Quick start::

    import repro

    inst = repro.powerlaw_alignment_instance(n=400, expected_degree=6, seed=0)
    result = repro.align(inst.problem, method="bp")
    print(result.summary())

``repro.align`` is the single entry point for every solver —
``method="bp" | "klau" | "isorank" | "multilevel"`` — and accepts the
method's config dataclass or a plain dict.  See README.md for the
architecture overview and DESIGN.md for the paper-to-module map.
"""

from repro.accel import ParallelConfig, parallel_map, solve_many
from repro.core import (
    AlignmentResult,
    BPConfig,
    IsoRankConfig,
    KlauConfig,
    NetworkAlignmentProblem,
    belief_propagation_align,
    isorank_align,
    klau_align,
    lp_relaxation_align,
    make_matcher,
    round_heuristic,
)
from repro.core.rounding import MATCHER_KINDS
from repro.generators import (
    AlignmentInstance,
    bio_instance,
    dmela_scere,
    homo_musm,
    lcsh_rameau,
    lcsh_wiki,
    ontology_instance,
    powerlaw_alignment_instance,
    powerlaw_graph,
)
from repro import observe
from repro.graph import Graph
from repro.incremental import (
    DeltaReport,
    ProblemDelta,
    WarmState,
    apply_delta,
    realign,
)
from repro.machine import SimulatedRuntime, xeon_e7_8870
from repro.matching import (
    KERNEL_KINDS,
    MATCHING_BACKENDS,
    MatchingResult,
    auction_matching,
    greedy_matching,
    locally_dominant_matching,
    locally_dominant_matching_vectorized,
    max_weight_matching,
    suitor_matching,
)
from repro.multilevel import (
    CoarseningMap,
    MultilevelConfig,
    coarsen_graph,
    multilevel_align,
)
from repro.registry import (
    SolverSpec,
    align,
    available_methods,
    get_solver,
    register_solver,
)
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    MachineFaults,
    ResilienceConfig,
    SolverCheckpoint,
    fault_plan,
    get_checkpoint_store,
    supervised_map,
)
from repro import serve
from repro.serve import ServeConfig, serve_in_thread
from repro.sparse import BipartiteGraph, CSRMatrix

__version__ = "1.1.0"

__all__ = [
    "AlignmentInstance",
    "AlignmentResult",
    "BPConfig",
    "BipartiteGraph",
    "CSRMatrix",
    "CoarseningMap",
    "DeltaReport",
    "FaultPlan",
    "FaultSpec",
    "Graph",
    "IsoRankConfig",
    "KERNEL_KINDS",
    "KlauConfig",
    "MATCHER_KINDS",
    "MATCHING_BACKENDS",
    "MachineFaults",
    "MatchingResult",
    "MultilevelConfig",
    "NetworkAlignmentProblem",
    "ParallelConfig",
    "ProblemDelta",
    "ResilienceConfig",
    "ServeConfig",
    "SimulatedRuntime",
    "SolverCheckpoint",
    "SolverSpec",
    "WarmState",
    "__version__",
    "align",
    "apply_delta",
    "auction_matching",
    "available_methods",
    "belief_propagation_align",
    "bio_instance",
    "coarsen_graph",
    "dmela_scere",
    "fault_plan",
    "get_checkpoint_store",
    "get_solver",
    "greedy_matching",
    "homo_musm",
    "isorank_align",
    "klau_align",
    "lcsh_rameau",
    "lcsh_wiki",
    "locally_dominant_matching",
    "locally_dominant_matching_vectorized",
    "lp_relaxation_align",
    "make_matcher",
    "max_weight_matching",
    "multilevel_align",
    "observe",
    "ontology_instance",
    "parallel_map",
    "powerlaw_alignment_instance",
    "powerlaw_graph",
    "realign",
    "register_solver",
    "round_heuristic",
    "serve",
    "serve_in_thread",
    "solve_many",
    "suitor_matching",
    "supervised_map",
    "xeon_e7_8870",
]
