"""netalign-mc-py: network alignment via approximate matching (SC 2012).

A from-scratch Python reproduction of Khan, Gleich, Pothen &
Halappanavar, *"A multithreaded algorithm for network alignment via
approximate matching"* (SC 2012): the belief-propagation and Klau
matching-relaxation alignment heuristics, exact and locally-dominant
½-approximate bipartite matching, the paper's problem families, and a
trace-driven simulated NUMA machine reproducing its strong-scaling study.

Quick start::

    from repro import powerlaw_alignment_instance, belief_propagation_align

    inst = powerlaw_alignment_instance(n=400, expected_degree=6, seed=0)
    result = belief_propagation_align(inst.problem)
    print(result.summary())

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.accel import ParallelConfig, parallel_map, solve_many
from repro.core import (
    AlignmentResult,
    BPConfig,
    KlauConfig,
    NetworkAlignmentProblem,
    belief_propagation_align,
    klau_align,
    lp_relaxation_align,
    round_heuristic,
)
from repro.generators import (
    AlignmentInstance,
    bio_instance,
    dmela_scere,
    homo_musm,
    lcsh_rameau,
    lcsh_wiki,
    ontology_instance,
    powerlaw_alignment_instance,
    powerlaw_graph,
)
from repro import observe
from repro.graph import Graph
from repro.machine import SimulatedRuntime, xeon_e7_8870
from repro.matching import (
    MatchingResult,
    greedy_matching,
    locally_dominant_matching,
    locally_dominant_matching_vectorized,
    max_weight_matching,
)
from repro.sparse import BipartiteGraph, CSRMatrix

__version__ = "1.0.0"

__all__ = [
    "AlignmentInstance",
    "AlignmentResult",
    "BPConfig",
    "BipartiteGraph",
    "CSRMatrix",
    "Graph",
    "KlauConfig",
    "MatchingResult",
    "NetworkAlignmentProblem",
    "ParallelConfig",
    "SimulatedRuntime",
    "__version__",
    "belief_propagation_align",
    "bio_instance",
    "dmela_scere",
    "greedy_matching",
    "homo_musm",
    "klau_align",
    "lcsh_rameau",
    "lcsh_wiki",
    "locally_dominant_matching",
    "locally_dominant_matching_vectorized",
    "lp_relaxation_align",
    "max_weight_matching",
    "observe",
    "ontology_instance",
    "parallel_map",
    "powerlaw_alignment_instance",
    "powerlaw_graph",
    "round_heuristic",
    "solve_many",
    "xeon_e7_8870",
]
