"""COO → CSR construction in linear time.

The generators produce edge lists (COO triplets); everything downstream
wants CSR.  Duplicate coordinates can be summed, maxed, or rejected.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro._util import asarray_f64, asarray_i64, check_same_length
from repro.errors import DimensionError, ValidationError
from repro.sparse.csr import CSRMatrix

__all__ = ["coo_to_csr"]

DupPolicy = Literal["sum", "max", "error", "first"]


def coo_to_csr(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray | float,
    shape: tuple[int, int],
    *,
    dedup: DupPolicy = "sum",
) -> CSRMatrix:
    """Build a :class:`CSRMatrix` from COO triplets.

    Parameters
    ----------
    rows, cols:
        Integer coordinate arrays of equal length.
    vals:
        Value array of the same length, or a scalar broadcast to all
        coordinates.
    shape:
        Matrix shape ``(n_rows, n_cols)``.
    dedup:
        What to do with duplicate ``(row, col)`` coordinates: ``"sum"``
        (sparse-matrix convention), ``"max"``, ``"first"`` (keep first
        occurrence), or ``"error"``.

    The construction is fully vectorized: a stable lexicographic argsort on
    ``(row, col)`` followed by segmented reduction over runs of equal
    coordinates.
    """
    rows = asarray_i64(rows)
    cols = asarray_i64(cols)
    n = check_same_length(rows, cols)
    if np.isscalar(vals):
        vals = np.full(n, float(vals))
    vals = asarray_f64(vals)
    if len(vals) != n:
        raise DimensionError(f"vals has length {len(vals)}, expected {n}")

    n_rows, n_cols = shape
    if n:
        if rows.min() < 0 or rows.max() >= n_rows:
            raise ValidationError("row index out of range")
        if cols.min() < 0 or cols.max() >= n_cols:
            raise ValidationError("column index out of range")

    # Stable sort by (row, col); stability makes "first" deterministic.
    order = np.lexsort((cols, rows))
    r = rows[order]
    c = cols[order]
    v = vals[order]

    if n:
        is_new = np.empty(n, dtype=bool)
        is_new[0] = True
        is_new[1:] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
        if not is_new.all():
            if dedup == "error":
                raise ValidationError("duplicate coordinates present")
            starts = np.flatnonzero(is_new)
            if dedup == "sum":
                v = np.add.reduceat(v, starts)
            elif dedup == "max":
                v = np.maximum.reduceat(v, starts)
            elif dedup == "first":
                v = v[starts]
            else:  # pragma: no cover - guarded by Literal type
                raise ValidationError(f"unknown dedup policy {dedup!r}")
            r = r[starts]
            c = c[starts]

    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.add.at(indptr, r + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRMatrix(shape, indptr, c, v, _checked=True)
