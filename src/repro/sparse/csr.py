"""A minimal compressed-sparse-row matrix.

We deliberately implement our own CSR container instead of using
``scipy.sparse``: the algorithms in the paper exploit the *fixed structure*
of their matrices (value-only updates, transpose-by-permutation, triu/tril
masks over the value array), and owning the representation keeps those
idioms explicit.  ``scipy.sparse`` is used only in tests, as an oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import asarray_f64, asarray_i64
from repro.errors import DimensionError, ValidationError

__all__ = ["CSRMatrix"]


@dataclass
class CSRMatrix:
    """Compressed sparse row matrix with ``float64`` values.

    Attributes
    ----------
    shape:
        ``(n_rows, n_cols)``.
    indptr:
        ``int64`` array of length ``n_rows + 1``; row ``i`` owns the nonzero
        range ``indptr[i]:indptr[i+1]``.
    indices:
        ``int64`` column indices, sorted within each row.
    data:
        ``float64`` nonzero values, aligned with ``indices``.

    The structure (``indptr``/``indices``) is treated as immutable after
    construction; algorithms mutate only ``data`` (the paper's "non-zero
    patterns and structures remain fixed throughout iterations").
    """

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    _checked: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.indptr = asarray_i64(self.indptr)
        self.indices = asarray_i64(self.indices)
        self.data = asarray_f64(self.data)
        if not self._checked:
            self.validate()
            self._checked = True

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        """Number of columns."""
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros (explicit zeros count)."""
        return int(self.indptr[-1])

    def validate(self) -> None:
        """Raise :class:`ValidationError` unless this is a well-formed CSR."""
        n_rows, n_cols = self.shape
        if n_rows < 0 or n_cols < 0:
            raise DimensionError(f"negative shape {self.shape}")
        if self.indptr.shape != (n_rows + 1,):
            raise ValidationError(
                f"indptr has shape {self.indptr.shape}, expected ({n_rows + 1},)"
            )
        if self.indptr[0] != 0:
            raise ValidationError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValidationError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape != (nnz,) or self.data.shape != (nnz,):
            raise ValidationError(
                "indices/data length does not match indptr[-1] "
                f"({self.indices.shape}, {self.data.shape}, nnz={nnz})"
            )
        if nnz:
            if self.indices.min() < 0 or self.indices.max() >= n_cols:
                raise ValidationError("column index out of range")
            # Sorted-within-row check, vectorized: a decrease is only legal
            # at row boundaries.
            decreases = np.flatnonzero(np.diff(self.indices) < 0) + 1
            row_starts = self.indptr[1:-1]
            if not np.isin(decreases, row_starts).all():
                raise ValidationError("indices must be sorted within each row")
            if not np.isfinite(self.data).all():
                raise ValidationError(
                    "data must be finite (NaN/inf found); value-only "
                    "updates propagate a poisoned entry everywhere"
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def row_slice(self, i: int) -> slice:
        """Return the ``slice`` into ``indices``/``data`` owned by row ``i``."""
        return slice(int(self.indptr[i]), int(self.indptr[i + 1]))

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(columns, values)`` views for row ``i``."""
        sl = self.row_slice(i)
        return self.indices[sl], self.data[sl]

    def row_lengths(self) -> np.ndarray:
        """Return the per-row nonzero counts (length ``n_rows``)."""
        return np.diff(self.indptr)

    def row_of_nonzero(self) -> np.ndarray:
        """Return, for every stored nonzero, the row it belongs to.

        This "expanded row index" array is the workhorse for vectorized
        per-row scaling (the ``diag(v) @ S`` operations in both methods).
        """
        return np.repeat(
            np.arange(self.n_rows, dtype=np.int64), self.row_lengths()
        )

    def to_dense(self) -> np.ndarray:
        """Return a dense ``float64`` array (tests / tiny matrices only)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        rows = self.row_of_nonzero()
        # ``np.add.at`` sums duplicates, matching sparse semantics.
        np.add.at(dense, (rows, self.indices), self.data)
        return dense

    # ------------------------------------------------------------------
    # Value-space helpers
    # ------------------------------------------------------------------
    def copy(self, *, data: np.ndarray | None = None) -> "CSRMatrix":
        """Return a copy sharing structure arrays but with fresh values.

        Structure arrays are reused (they are immutable by convention),
        mirroring the paper's preallocate-once discipline.
        """
        new_data = self.data.copy() if data is None else asarray_f64(data)
        if new_data.shape != self.data.shape:
            raise DimensionError(
                f"data has shape {new_data.shape}, expected {self.data.shape}"
            )
        return CSRMatrix(
            self.shape, self.indptr, self.indices, new_data, _checked=True
        )

    def with_values(self, data: np.ndarray) -> "CSRMatrix":
        """Alias of :meth:`copy` with explicit new values."""
        return self.copy(data=data)

    def same_structure(self, other: "CSRMatrix") -> bool:
        """Return True if ``other`` has identical shape and sparsity."""
        return (
            self.shape == other.shape
            and self.indptr.shape == other.indptr.shape
            and self.indices.shape == other.indices.shape
            and bool(np.array_equal(self.indptr, other.indptr))
            and bool(np.array_equal(self.indices, other.indices))
        )

    def nonzero_coords(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(rows, cols)`` coordinate arrays of the stored nonzeros."""
        return self.row_of_nonzero(), self.indices.copy()

    # ------------------------------------------------------------------
    # Triangular masks (Klau's step 5 works on triu/tril of S's structure)
    # ------------------------------------------------------------------
    def upper_mask(self) -> np.ndarray:
        """Boolean mask over stored nonzeros with ``col > row`` (strict triu)."""
        return self.indices > self.row_of_nonzero()

    def lower_mask(self) -> np.ndarray:
        """Boolean mask over stored nonzeros with ``col < row`` (strict tril)."""
        return self.indices < self.row_of_nonzero()
