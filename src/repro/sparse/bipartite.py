"""The weighted bipartite graph *L* between the vertex sets of A and B.

Every heuristic weight vector in the paper (w, y, z, d, ...) is indexed by
the edges of L, so the central design decision is a single canonical edge-id
space shared by all of them:

* Edge ids ``0..m-1`` are assigned in row-major order (sorted by
  ``(a, b)``), so the *row view* (grouping by A-vertex) is just an
  ``indptr`` array — the edge arrays themselves are already row-grouped.
* The *column view* (grouping by B-vertex) is a precomputed permutation of
  edge ids plus its own ``indptr`` — this is the same permutation trick the
  paper uses for transposes, applied to L.

Both views are built once; per-iteration work only gathers through them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import asarray_f64, asarray_i64, check_same_length
from repro.errors import DimensionError, ValidationError

__all__ = ["BipartiteGraph"]


@dataclass
class BipartiteGraph:
    """Weighted bipartite graph with a canonical row-major edge-id space.

    Attributes
    ----------
    n_a, n_b:
        Sizes of the two vertex sets (graph A side and graph B side).
    edge_a, edge_b:
        Endpoint arrays of length ``m``; edge ``e`` joins A-vertex
        ``edge_a[e]`` to B-vertex ``edge_b[e]``.  Sorted by ``(a, b)``.
    weights:
        ``float64`` edge weights (the vector **w** of the paper).

    Use :meth:`from_edges` to construct from an arbitrary-order edge list.
    """

    n_a: int
    n_b: int
    edge_a: np.ndarray
    edge_b: np.ndarray
    weights: np.ndarray
    _row_ptr: np.ndarray = field(default=None, repr=False, compare=False)
    _col_ptr: np.ndarray = field(default=None, repr=False, compare=False)
    _col_perm: np.ndarray = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n_a: int,
        n_b: int,
        edge_a: np.ndarray,
        edge_b: np.ndarray,
        weights: np.ndarray | float = 1.0,
        *,
        dedup: str = "max",
    ) -> "BipartiteGraph":
        """Build from an unsorted edge list, deduplicating repeats.

        ``dedup`` follows :func:`repro.sparse.build.coo_to_csr` semantics;
        the default ``"max"`` matches how text-similarity L graphs are
        built (keep the best score for a candidate pair).
        """
        edge_a = asarray_i64(edge_a)
        edge_b = asarray_i64(edge_b)
        m = check_same_length(edge_a, edge_b)
        if np.isscalar(weights):
            weights = np.full(m, float(weights))
        weights = asarray_f64(weights)
        if len(weights) != m:
            raise DimensionError("weights length mismatch")
        if m:
            if edge_a.min() < 0 or edge_a.max() >= n_a:
                raise ValidationError("A-side endpoint out of range")
            if edge_b.min() < 0 or edge_b.max() >= n_b:
                raise ValidationError("B-side endpoint out of range")
        order = np.lexsort((edge_b, edge_a))
        a, b, w = edge_a[order], edge_b[order], weights[order]
        if m:
            is_new = np.empty(m, dtype=bool)
            is_new[0] = True
            is_new[1:] = (a[1:] != a[:-1]) | (b[1:] != b[:-1])
            if not is_new.all():
                starts = np.flatnonzero(is_new)
                if dedup == "max":
                    w = np.maximum.reduceat(w, starts)
                elif dedup == "sum":
                    w = np.add.reduceat(w, starts)
                elif dedup == "first":
                    w = w[starts]
                elif dedup == "error":
                    raise ValidationError("duplicate L edges present")
                else:
                    raise ValidationError(f"unknown dedup policy {dedup!r}")
                a, b = a[starts], b[starts]
        return cls(n_a, n_b, a, b, w)

    def __post_init__(self) -> None:
        self.edge_a = asarray_i64(self.edge_a)
        self.edge_b = asarray_i64(self.edge_b)
        self.weights = asarray_f64(self.weights)
        m = check_same_length(self.edge_a, self.edge_b, self.weights)
        if m:
            if self.edge_a.min() < 0 or self.edge_a.max() >= self.n_a:
                raise ValidationError("A-side endpoint out of range")
            if self.edge_b.min() < 0 or self.edge_b.max() >= self.n_b:
                raise ValidationError("B-side endpoint out of range")
            keys = self.edge_a * self.n_b + self.edge_b
            if np.any(np.diff(keys) <= 0):
                raise ValidationError(
                    "edges must be strictly sorted by (a, b); "
                    "use from_edges() for arbitrary input"
                )
            if not np.isfinite(self.weights).all():
                raise ValidationError(
                    "edge weights must be finite (NaN/inf found); "
                    "a corrupted weight silently poisons every objective "
                    "built on this graph"
                )
        # Row view: indptr over A vertices (edges already row-grouped).
        row_ptr = np.zeros(self.n_a + 1, dtype=np.int64)
        np.add.at(row_ptr, self.edge_a + 1, 1)
        np.cumsum(row_ptr, out=row_ptr)
        self._row_ptr = row_ptr
        # Column view: permutation sorting edge ids by (b, a) + indptr.
        col_perm = np.lexsort((self.edge_a, self.edge_b))
        col_ptr = np.zeros(self.n_b + 1, dtype=np.int64)
        np.add.at(col_ptr, self.edge_b + 1, 1)
        np.cumsum(col_ptr, out=col_ptr)
        self._col_perm = asarray_i64(col_perm)
        self._col_ptr = col_ptr

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Number of edges ``m = |E_L|``."""
        return len(self.edge_a)

    @property
    def row_ptr(self) -> np.ndarray:
        """``indptr`` over A vertices; row ``i`` owns edges ``row_ptr[i]:row_ptr[i+1]``."""
        return self._row_ptr

    @property
    def col_ptr(self) -> np.ndarray:
        """``indptr`` over B vertices for the column view (use with :attr:`col_perm`)."""
        return self._col_ptr

    @property
    def col_perm(self) -> np.ndarray:
        """Edge-id permutation grouping edges by B-vertex (sorted by ``(b, a)``)."""
        return self._col_perm

    def degrees_a(self) -> np.ndarray:
        """Per-A-vertex edge counts."""
        return np.diff(self._row_ptr)

    def degrees_b(self) -> np.ndarray:
        """Per-B-vertex edge counts."""
        return np.diff(self._col_ptr)

    def edges_of_a(self, i: int) -> np.ndarray:
        """Edge ids incident on A-vertex ``i`` (a contiguous range)."""
        return np.arange(self._row_ptr[i], self._row_ptr[i + 1], dtype=np.int64)

    def edges_of_b(self, j: int) -> np.ndarray:
        """Edge ids incident on B-vertex ``j``."""
        return self._col_perm[self._col_ptr[j] : self._col_ptr[j + 1]]

    def lookup_edges(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized ``(a, b) -> edge id`` lookup; ``-1`` where absent.

        This is the hash join used to build the squares matrix **S**:
        the edge keys are already sorted, so a ``searchsorted`` suffices.
        """
        a = asarray_i64(a)
        b = asarray_i64(b)
        probe = a * self.n_b + b
        if self.n_edges == 0:
            return np.full(len(probe), -1, dtype=np.int64)
        keys = self.edge_a * self.n_b + self.edge_b
        pos = np.searchsorted(keys, probe)
        pos_clipped = np.minimum(pos, len(keys) - 1)
        found = (pos < len(keys)) & (keys[pos_clipped] == probe)
        result = np.where(found, pos_clipped, -1)
        return result.astype(np.int64)

    # ------------------------------------------------------------------
    # Views for the matching substrate
    # ------------------------------------------------------------------
    def as_general_graph(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return L as a general undirected graph over ``n_a + n_b`` vertices.

        The paper feeds L to the locally-dominant matcher "by not making a
        distinction between the two sets of vertices".  Returns
        ``(indptr, neighbors, half_edge_eid, half_edge_weight)`` where
        vertices ``0..n_a-1`` are the A side and ``n_a..n_a+n_b-1`` the B
        side; each L edge appears as two half-edges carrying its edge id.
        """
        n = self.n_a + self.n_b
        m = self.n_edges
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, self.edge_a + 1, 1)
        np.add.at(indptr, self.n_a + self.edge_b + 1, 1)
        np.cumsum(indptr, out=indptr)
        neighbors = np.empty(2 * m, dtype=np.int64)
        half_eid = np.empty(2 * m, dtype=np.int64)
        # A-side half-edges are the row view in order; B-side come from the
        # column permutation.  Both are therefore sorted within each vertex.
        neighbors[: indptr[self.n_a]] = self.n_a + self.edge_b
        half_eid[: indptr[self.n_a]] = np.arange(m, dtype=np.int64)
        b_slice = slice(int(indptr[self.n_a]), 2 * m)
        neighbors[b_slice] = self.edge_a[self._col_perm]
        half_eid[b_slice] = self._col_perm
        return indptr, neighbors, half_eid, self.weights[half_eid]

    def subgraph(self, edge_mask: np.ndarray) -> "BipartiteGraph":
        """Return the bipartite graph keeping only edges where ``edge_mask``.

        Vertex ids are preserved (no compaction) so weight vectors indexed
        by the original edge ids can be sliced with the same mask.
        """
        edge_mask = np.asarray(edge_mask)
        if edge_mask.shape != (self.n_edges,):
            raise DimensionError("edge_mask has wrong length")
        return BipartiteGraph(
            self.n_a,
            self.n_b,
            self.edge_a[edge_mask],
            self.edge_b[edge_mask],
            self.weights[edge_mask],
        )

    def with_weights(self, weights: np.ndarray) -> "BipartiteGraph":
        """Return a view of this graph carrying a different weight vector."""
        weights = asarray_f64(weights)
        if weights.shape != (self.n_edges,):
            raise DimensionError("weights has wrong length")
        g = BipartiteGraph.__new__(BipartiteGraph)
        g.n_a, g.n_b = self.n_a, self.n_b
        g.edge_a, g.edge_b = self.edge_a, self.edge_b
        g.weights = weights
        g._row_ptr = self._row_ptr
        g._col_ptr = self._col_ptr
        g._col_perm = self._col_perm
        return g
