"""Sparse-matrix substrate: CSR storage and the kernels the paper relies on.

The SC 2012 code stores every matrix in compressed sparse row (CSR) form
with a *fixed* nonzero structure across iterations, which enables the
"permutation trick": the transpose of a structurally symmetric matrix is a
one-time permutation of its value array.  This subpackage provides:

* :class:`~repro.sparse.csr.CSRMatrix` — minimal, validated CSR container.
* :func:`~repro.sparse.build.coo_to_csr` — linear-time COO→CSR with
  duplicate handling.
* :func:`~repro.sparse.permutation.transpose_permutation` — the paper's
  permutation trick.
* :mod:`~repro.sparse.ops` — SpMV, row scaling, clipping (``bound``),
  daxpy; all vectorized, all allocation-free when an ``out`` is supplied.
* :class:`~repro.sparse.bipartite.BipartiteGraph` — the weighted bipartite
  graph *L* with row- and column-grouped views over a single edge-id space.
"""

from repro.sparse.bipartite import BipartiteGraph
from repro.sparse.build import coo_to_csr
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import bound, daxpy, row_scale, row_sums, spmv
from repro.sparse.permutation import (
    check_structural_symmetry,
    transpose_permutation,
)

__all__ = [
    "BipartiteGraph",
    "CSRMatrix",
    "bound",
    "check_structural_symmetry",
    "coo_to_csr",
    "daxpy",
    "row_scale",
    "row_sums",
    "spmv",
    "transpose_permutation",
]
