"""The paper's "permutation trick" for transposes of fixed-structure matrices.

Section IV-A: *"because S and U are structurally symmetric with the same
structure, the transposes have the same row pointer and the column index
arrays. But the value array is permuted. So we compute the permutation and
whenever we need to transpose one of these matrices, we just permute the
values array according to the permutation."*

:func:`transpose_permutation` computes that permutation once; afterwards
``data[perm]`` *is* the value array of the transpose, with zero structural
work per iteration.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sparse.csr import CSRMatrix

__all__ = ["transpose_permutation", "check_structural_symmetry"]


def check_structural_symmetry(mat: CSRMatrix) -> bool:
    """Return True if the sparsity pattern of ``mat`` is symmetric.

    The matrix must be square.  The check is vectorized: the multiset of
    ``(row, col)`` coordinates must equal the multiset of ``(col, row)``.
    """
    if mat.n_rows != mat.n_cols:
        return False
    rows = mat.row_of_nonzero()
    cols = mat.indices
    forward = rows * mat.n_cols + cols
    backward = cols * mat.n_cols + rows
    return bool(np.array_equal(np.sort(forward), np.sort(backward)))


def transpose_permutation(mat: CSRMatrix) -> np.ndarray:
    """Return ``perm`` with ``transpose(mat).data == mat.data[perm]``.

    ``mat`` must be square and structurally symmetric, so that the transpose
    shares ``indptr``/``indices`` with the original and only the value array
    moves.  ``perm`` maps each stored position of the *transpose* (== each
    stored position of ``mat``, since structures coincide) to the position
    in ``mat`` holding the transposed value: position ``k`` storing entry
    ``(i, j)`` receives the value of entry ``(j, i)``.

    The permutation is an involution (``perm[perm] == identity``); tests
    rely on this.
    """
    if mat.n_rows != mat.n_cols:
        raise ValidationError("transpose_permutation needs a square matrix")
    if mat.nnz == 0:
        return np.empty(0, dtype=np.int64)
    rows = mat.row_of_nonzero()
    cols = mat.indices
    n = mat.n_cols
    keys = rows * n + cols
    order = np.argsort(keys, kind="stable")  # positions sorted by (row, col)
    swapped = cols * n + rows  # key of the mirror entry of each position
    where = np.searchsorted(keys[order], swapped)
    if where.max(initial=-1) >= len(order) or not np.array_equal(
        keys[order][where], swapped
    ):
        raise ValidationError(
            "matrix is not structurally symmetric; transpose permutation "
            "undefined"
        )
    return order[where]
