"""Vectorized sparse kernels used by both alignment methods.

These mirror the paper's hand-written OpenMP "parallel for" loops (which
beat MKL there because the operations are so simple).  In Python the
corresponding idiom is a single NumPy expression over the flat value
arrays; every kernel accepts an ``out`` argument so iteration loops can be
allocation-free, matching the paper's preallocate-everything discipline.
"""

from __future__ import annotations

import numpy as np

from repro._util import asarray_f64
from repro.errors import DimensionError
from repro.sparse.csr import CSRMatrix

__all__ = [
    "spmv",
    "row_sums",
    "row_scale",
    "bound",
    "daxpy",
    "quadratic_form",
]


def spmv(mat: CSRMatrix, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Compute ``mat @ x`` for a dense vector ``x``.

    Vectorized as a gather (``x[indices] * data``) followed by a segmented
    sum per row via ``np.add.reduceat`` — no Python-level loop.
    """
    x = asarray_f64(x)
    if x.shape != (mat.n_cols,):
        raise DimensionError(f"x has shape {x.shape}, expected ({mat.n_cols},)")
    if out is None:
        out = np.zeros(mat.n_rows, dtype=np.float64)
    else:
        if out.shape != (mat.n_rows,):
            raise DimensionError(
                f"out has shape {out.shape}, expected ({mat.n_rows},)"
            )
        out[:] = 0.0
    if mat.nnz == 0 or mat.n_rows == 0:
        return out
    products = mat.data * x[mat.indices]
    _segment_sum(products, mat.indptr, out)
    return out


def row_sums(mat: CSRMatrix, out: np.ndarray | None = None) -> np.ndarray:
    """Compute per-row sums of the stored values (``mat @ e``)."""
    if out is None:
        out = np.zeros(mat.n_rows, dtype=np.float64)
    else:
        if out.shape != (mat.n_rows,):
            raise DimensionError(
                f"out has shape {out.shape}, expected ({mat.n_rows},)"
            )
        out[:] = 0.0
    if mat.nnz == 0 or mat.n_rows == 0:
        return out
    _segment_sum(mat.data, mat.indptr, out)
    return out


def _segment_sum(values: np.ndarray, indptr: np.ndarray, out: np.ndarray) -> None:
    """Sum ``values`` into ``out`` per CSR row, tolerating empty rows.

    ``np.add.reduceat`` mishandles empty segments (it returns the *next*
    element instead of 0), so we mask them explicitly.
    """
    n_rows = len(out)
    starts = indptr[:-1]
    nonempty = indptr[1:] > starts
    if not nonempty.any():
        return
    # reduceat over only the nonempty segment starts; a start equal to
    # len(values) would be illegal but cannot occur for a nonempty segment.
    seg_starts = starts[nonempty]
    sums = np.add.reduceat(values, seg_starts)
    out[np.arange(n_rows)[nonempty]] = sums


def row_scale(
    mat: CSRMatrix, scale: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Return the value array of ``diag(scale) @ mat`` (structure unchanged).

    Used by Klau step 5 (``X @ triu(S_L)``) and BP step 4
    (``diag(y+z-d) @ S``): the paper notes "there is no need to form the
    diagonal matrix".
    """
    scale = asarray_f64(scale)
    if scale.shape != (mat.n_rows,):
        raise DimensionError(
            f"scale has shape {scale.shape}, expected ({mat.n_rows},)"
        )
    expanded = np.repeat(scale, mat.row_lengths())
    if out is None:
        return expanded * mat.data
    np.multiply(expanded, mat.data, out=out)
    return out


def bound(
    values: np.ndarray,
    lower: float,
    upper: float,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Elementwise ``bound_{l,u}`` from Table I of the paper (clip)."""
    if lower > upper:
        raise ValueError(f"lower {lower} > upper {upper}")
    return np.clip(values, lower, upper, out=out)


def daxpy(
    alpha: float,
    x: np.ndarray,
    y: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Compute ``alpha * x + y`` (the paper's "Step 2: daxpy")."""
    x = asarray_f64(x)
    y = asarray_f64(y)
    if x.shape != y.shape:
        raise DimensionError(f"shape mismatch {x.shape} vs {y.shape}")
    if out is None:
        return alpha * x + y
    np.multiply(x, alpha, out=out)
    out += y
    return out


def quadratic_form(mat: CSRMatrix, x: np.ndarray) -> float:
    """Compute ``x.T @ mat @ x`` without materializing intermediates."""
    return float(np.dot(x, spmv(mat, x)))
