"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate finer failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DimensionError",
    "ValidationError",
    "NotAMatchingError",
    "ConfigurationError",
    "TraceError",
    "ObservabilityError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class DimensionError(ReproError, ValueError):
    """Array or matrix dimensions are inconsistent with each other."""


class ValidationError(ReproError, ValueError):
    """An input object failed structural validation (bad CSR, bad graph...)."""


class NotAMatchingError(ValidationError):
    """An edge subset claimed to be a matching violates the degree-1 rule."""


class ConfigurationError(ReproError, ValueError):
    """An algorithm or machine configuration value is invalid."""


class TraceError(ReproError, RuntimeError):
    """A work trace is malformed or used inconsistently with the runtime."""


class ObservabilityError(ReproError, RuntimeError):
    """An event breaches the :mod:`repro.observe` schema or sink contract."""
