"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate finer failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DimensionError",
    "ValidationError",
    "NotAMatchingError",
    "ConfigurationError",
    "TraceError",
    "ObservabilityError",
    "ResilienceError",
    "FaultInjectedError",
    "TaskFailedError",
    "TimeoutExceededError",
    "BackendUnavailableError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class DimensionError(ReproError, ValueError):
    """Array or matrix dimensions are inconsistent with each other."""


class ValidationError(ReproError, ValueError):
    """An input object failed structural validation (bad CSR, bad graph...)."""


class NotAMatchingError(ValidationError):
    """An edge subset claimed to be a matching violates the degree-1 rule."""


class ConfigurationError(ReproError, ValueError):
    """An algorithm or machine configuration value is invalid."""


class TraceError(ReproError, RuntimeError):
    """A work trace is malformed or used inconsistently with the runtime."""


class ObservabilityError(ReproError, RuntimeError):
    """An event breaches the :mod:`repro.observe` schema or sink contract."""


class ResilienceError(ReproError, RuntimeError):
    """Base class for the :mod:`repro.resilience` failure modes."""


class FaultInjectedError(ResilienceError):
    """A deterministic fault from a :class:`repro.resilience.FaultPlan` fired.

    Carries ``site``, ``task_index`` and ``worker_id`` so supervision
    layers (and tests) can attribute the failure to the injection point.
    """

    def __init__(
        self, site: str, task_index: int = -1, worker_id: int = -1
    ) -> None:
        super().__init__(
            f"injected crash fault at site {site!r} "
            f"(task={task_index}, worker={worker_id})"
        )
        self.site = site
        self.task_index = task_index
        self.worker_id = worker_id

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # message) into ``__init__``; rebuild from the real fields so
        # the error survives a trip through a process pool.
        return (type(self), (self.site, self.task_index, self.worker_id))


class TaskFailedError(ResilienceError):
    """One task of a batch failed after exhausting its retry budget.

    ``task_index`` locates the task in the submitted batch;
    ``remote_traceback`` carries the formatted traceback from wherever
    the task actually ran (possibly a worker process), so the failure is
    debuggable from the parent.
    """

    def __init__(
        self,
        message: str,
        task_index: int = -1,
        remote_traceback: str = "",
    ) -> None:
        super().__init__(message)
        self.message = message
        self.task_index = task_index
        self.remote_traceback = remote_traceback

    def __reduce__(self):
        return (
            type(self),
            (self.message, self.task_index, self.remote_traceback),
        )

    def __str__(self) -> str:  # pragma: no cover - formatting
        base = super().__str__()
        if self.remote_traceback:
            return f"{base}\n--- remote traceback ---\n{self.remote_traceback}"
        return base


class TimeoutExceededError(ResilienceError):
    """A supervised task exceeded its per-task timeout.

    Also the parent-side signal for a dead or hung worker: a worker that
    died without reporting looks like a task that never returns.
    """

    def __init__(self, site: str, task_index: int, timeout_s: float) -> None:
        super().__init__(
            f"task {task_index} at site {site!r} exceeded its "
            f"{timeout_s:g}s timeout (hung task or dead worker)"
        )
        self.site = site
        self.task_index = task_index
        self.timeout_s = timeout_s

    def __reduce__(self):
        return (type(self), (self.site, self.task_index, self.timeout_s))


class BackendUnavailableError(ResilienceError):
    """Every rung of the degradation ladder was exhausted for a backend."""
