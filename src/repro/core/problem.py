"""The network alignment problem instance (paper §II).

Bundles the inputs ``(A, B, L, w, α, β)`` with the derived squares matrix
**S**, its transpose permutation, and the objective helpers.  Everything
derived is computed once and cached — the iterative methods never touch
graph structure after construction, mirroring the paper's
preallocate-and-fix-structure discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.squares import build_squares
from repro.errors import ConfigurationError, DimensionError, ValidationError
from repro.graph.graph import Graph
from repro.sparse.bipartite import BipartiteGraph
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spmv
from repro.sparse.permutation import transpose_permutation

__all__ = ["NetworkAlignmentProblem", "ProblemStats"]


@dataclass(frozen=True)
class ProblemStats:
    """The Table II row for a problem: sizes of the instance."""

    name: str
    n_a: int
    n_b: int
    n_edges_l: int
    nnz_s: int

    def as_row(self) -> str:
        """Format like Table II of the paper."""
        return (
            f"{self.name:<16} {self.n_a:>9,} {self.n_b:>9,} "
            f"{self.n_edges_l:>12,} {self.nnz_s:>11,}"
        )


@dataclass
class NetworkAlignmentProblem:
    """An instance of the network alignment problem.

    Attributes
    ----------
    a_graph, b_graph:
        The undirected graphs A and B.
    ell:
        The weighted bipartite candidate graph L (its ``weights`` are the
        vector **w**).
    alpha, beta:
        Objective weights: ``α·(matching weight) + β·(overlap count)``.
    name:
        Label used in reports.
    """

    a_graph: Graph
    b_graph: Graph
    ell: BipartiteGraph
    alpha: float = 1.0
    beta: float = 2.0
    name: str = "alignment"
    _squares: CSRMatrix | None = field(default=None, repr=False, compare=False)
    _strans: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.a_graph.n != self.ell.n_a or self.b_graph.n != self.ell.n_b:
            raise DimensionError("L does not connect V_A to V_B")
        if self.alpha < 0 or self.beta < 0:
            raise ConfigurationError("alpha and beta must be non-negative")
        w = self.ell.weights
        if len(w):
            if not np.isfinite(w).all():
                raise ValidationError(
                    "similarity weights w must be finite (NaN/inf found)"
                )
            if w.min() < 0:
                raise ValidationError(
                    "similarity weights w must be non-negative; the "
                    "objective α·wᵀx assumes similarity scores"
                )

    # ------------------------------------------------------------------
    # Derived structures (built lazily, cached)
    # ------------------------------------------------------------------
    @property
    def squares(self) -> CSRMatrix:
        """The squares matrix **S** (0/1, |E_L|², structurally symmetric)."""
        if self._squares is None:
            self._squares = build_squares(self.a_graph, self.b_graph, self.ell)
        return self._squares

    @property
    def squares_transpose_perm(self) -> np.ndarray:
        """Value permutation realizing **Sᵀ** on S's structure (§IV-A)."""
        if self._strans is None:
            self._strans = transpose_permutation(self.squares)
        return self._strans

    @property
    def weights(self) -> np.ndarray:
        """The weight vector **w** over L's edges."""
        return self.ell.weights

    @property
    def n_edges_l(self) -> int:
        """|E_L|, the dimension of all heuristic weight vectors."""
        return self.ell.n_edges

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    def overlap(self, x: np.ndarray, *, out: np.ndarray | None = None) -> float:
        """Number of overlapped edges ``xᵀSx / 2`` for indicator ``x``.

        ``out`` optionally receives the SpMV product (a caller-provided
        scratch buffer of length ``|E_L|``); the result is identical.
        """
        return float(np.dot(x, spmv(self.squares, x, out))) / 2.0

    def objective(self, x: np.ndarray) -> float:
        """The alignment objective ``α·wᵀx + (β/2)·xᵀSx``."""
        return float(
            self.alpha * np.dot(self.weights, x)
            + self.beta * self.overlap(x)
        )

    def objective_parts(
        self, x: np.ndarray, *, out: np.ndarray | None = None
    ) -> tuple[float, float, float]:
        """Return ``(objective, matching weight wᵀx, overlap count)``.

        ``out`` is an optional SpMV scratch buffer (see :meth:`overlap`);
        hot rounding loops pass one to avoid a per-call allocation.
        """
        weight_part = float(np.dot(self.weights, x))
        overlap_part = self.overlap(x, out=out)
        return (
            self.alpha * weight_part + self.beta * overlap_part,
            weight_part,
            overlap_part,
        )

    def stats(self) -> ProblemStats:
        """Sizes for the Table II report."""
        return ProblemStats(
            name=self.name,
            n_a=self.a_graph.n,
            n_b=self.b_graph.n,
            n_edges_l=self.ell.n_edges,
            nnz_s=self.squares.nnz,
        )

    def with_objective(self, alpha: float, beta: float) -> "NetworkAlignmentProblem":
        """Return a problem sharing all structure with new (α, β).

        The parameter sweeps of Fig. 3 re-solve the same instance under
        many objectives; sharing **S** avoids rebuilding it per point.
        """
        clone = NetworkAlignmentProblem(
            self.a_graph, self.b_graph, self.ell, alpha, beta, self.name
        )
        clone._squares = self._squares
        clone._strans = self._strans
        return clone

    def apply_delta(self, delta):
        """Apply a :class:`repro.incremental.ProblemDelta` edit script.

        Returns ``(new_problem, report)`` where ``report`` is a
        :class:`repro.incremental.DeltaReport`; the cached squares
        matrix is maintained incrementally instead of being rebuilt
        (see :func:`repro.incremental.apply_delta`).
        """
        from repro.incremental.delta import apply_delta

        return apply_delta(self, delta)
