"""Free-function objective helpers (usable without a problem object)."""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spmv

__all__ = ["alignment_objective", "overlap_count", "overlap_pairs"]


def overlap_count(squares: CSRMatrix, x: np.ndarray) -> float:
    """Overlapped-edge count ``xᵀSx / 2`` (paper §II)."""
    return float(np.dot(x, spmv(squares, x))) / 2.0


def alignment_objective(
    weights: np.ndarray,
    squares: CSRMatrix,
    x: np.ndarray,
    alpha: float,
    beta: float,
) -> float:
    """``α·wᵀx + (β/2)·xᵀSx`` for an indicator (or fractional) vector x."""
    return float(
        alpha * np.dot(weights, x) + (beta / 2.0) * np.dot(x, spmv(squares, x))
    )


def overlap_pairs(squares: CSRMatrix, edge_ids: np.ndarray) -> int:
    """Count overlapped edge pairs induced by a matching's L-edge ids.

    Combinatorial definition (pairs of matching edges forming a square),
    used by tests to cross-check the quadratic form.
    """
    in_matching = np.zeros(squares.n_rows, dtype=bool)
    in_matching[edge_ids] = True
    rows = squares.row_of_nonzero()
    hits = in_matching[rows] & in_matching[squares.indices]
    return int(hits.sum()) // 2
