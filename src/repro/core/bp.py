"""Belief propagation (BP) for network alignment (Listing 2).

Max-product message passing over the factor-graph form of the alignment
QP, with the simplifications of Bayati–Gleich et al.: two edge-indexed
message vectors **y**, **z** (one per matching constraint side), one
square-indexed message matrix **S**:sup:`(k)`, the ``othermax``
competition kernels, geometric damping by γ:sup:`k`, and a rounding step
per iteration.

Unlike Klau's method, the iterates are *independent* of the matcher used
for rounding (§VII) — the matching only scores iterates.  That makes BP
the method whose quality survives the approximate-matching substitution,
and it enables the paper's **batched rounding**: store the last ``r``
message vectors and round them together (as parallel tasks).  Here the
batch semantics are preserved (flush every ``r/2`` iterations) so the
work trace matches BP(batch=r); results are identical to immediate
rounding by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.configtools import ConfigBase
from repro.core.othermax import othermax_col, othermax_row
from repro.core.problem import NetworkAlignmentProblem
from repro.core.result import AlignmentResult, BestTracker, IterationRecord
from repro.core.rounding import (
    Matcher,
    RoundingWorkspace,
    emit_rounding,
    make_matcher,
    round_heuristic,
)
from repro.errors import ConfigurationError
from repro.observe import get_bus
from repro.resilience.faults import maybe_inject
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import row_sums

__all__ = ["BPConfig", "belief_propagation_align"]


@dataclass(frozen=True)
class BPConfig(ConfigBase):
    """Parameters of the BP method.

    ``batch`` is the paper's rounding batch size ``r`` (number of stored
    weight vectors; each iteration produces two, so a flush happens every
    ``max(1, r // 2)`` iterations).  ``matcher`` picks the rounding
    oracle.  ``gamma`` is the damping base of Step 5.  Serializes via
    :meth:`~repro.configtools.ConfigBase.to_dict` /
    :meth:`~repro.configtools.ConfigBase.from_dict`.
    """

    n_iter: int = 100
    gamma: float = 0.99
    batch: int = 1
    matcher: str = "approx"
    final_exact: bool = True
    #: Damping variant (the paper describes one; [13] has others):
    #: "power"  — convex combination with weight γ^k (Listing 2, default);
    #: "fixed"  — convex combination with constant weight γ;
    #: "none"   — raw message updates (BP may oscillate; rounding still
    #:            scores every iterate, so the best is kept).
    damping: str = "power"
    #: Accepted on every public config (common surface, round-tripped by
    #: ``to_dict``/``from_dict``); BP itself is deterministic and does
    #: not consume it.
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_iter < 1:
            raise ConfigurationError("n_iter must be >= 1")
        if not (0.0 < self.gamma <= 1.0):
            raise ConfigurationError("gamma must be in (0, 1]")
        if self.batch < 1:
            raise ConfigurationError("batch must be >= 1")
        if self.damping not in ("power", "fixed", "none"):
            raise ConfigurationError(f"unknown damping {self.damping!r}")


def belief_propagation_align(
    problem: NetworkAlignmentProblem,
    config: BPConfig | None = None,
    tracer: Any | None = None,
    *,
    parallel: "ParallelConfig | None" = None,
    init_messages: tuple[np.ndarray, np.ndarray] | None = None,
    checkpoint_every: int = 0,
    checkpoint_store: Any | None = None,
    checkpoint_key: str = "bp",
    resume: bool = False,
) -> AlignmentResult:
    """Run the BP message-passing method on ``problem``.

    ``tracer`` optionally records per-step work traces (see
    :mod:`repro.machine.trace`) for the scaling study.  When the
    :mod:`repro.observe` bus has sinks attached, the run is wrapped in a
    ``bp.align`` span and emits one ``iteration`` event per iteration
    (plus ``rounding``/``matching`` events from the rounding layer).

    ``parallel`` optionally selects an execution backend
    (:class:`repro.accel.ParallelConfig`) for the batched rounding step:
    the ``2 × batch`` matchings of each flush are independent, and the
    process backend fans them out over shared memory.  Results are
    bit-identical to the serial path for stateless matchers (see
    ``docs/performance.md``).

    ``init_messages`` optionally warm-starts the message vectors: a
    ``(y0, z0)`` pair of length ``|E_L|`` (both copied).  The multilevel
    V-cycle (:mod:`repro.multilevel`) uses this to seed each refine pass
    from the expanded coarse solution; default ``None`` keeps the
    all-zeros cold start of Listing 2.

    ``checkpoint_every`` > 0 snapshots the full iterate state (**y**,
    **z**, **S**:sup:`(k)`, the best tracker, the history) into
    ``checkpoint_store`` under ``checkpoint_key`` at batch-flush
    boundaries (so no pending rounding work is lost); ``resume`` picks
    any such snapshot back up and continues from the iteration after
    it, bit-identically to the uninterrupted run (damping uses the
    absolute iteration number).  A found snapshot takes precedence over
    ``init_messages``.  Stateless matchers only: ``exact-warm`` carries
    cross-call dual state a snapshot cannot capture.
    """
    config = config or BPConfig()
    if (checkpoint_every > 0 or resume) and config.matcher == "exact-warm":
        raise ConfigurationError(
            "checkpoint/resume requires a stateless matcher; "
            "'exact-warm' keeps dual potentials between matchings that "
            "a checkpoint does not capture"
        )
    bus = get_bus()
    matching_backend = None if parallel is None else parallel.matching_backend
    checkpointing = {
        "checkpoint_every": checkpoint_every,
        "checkpoint_store": checkpoint_store,
        "checkpoint_key": checkpoint_key,
        "resume": resume,
    }
    with bus.trace(
        "bp.align", matcher=config.matcher, n_iter=config.n_iter,
        batch=config.batch, damping=config.damping,
        backend="serial" if parallel is None else parallel.backend,
        matching_backend=matching_backend,
    ):
        if parallel is not None and parallel.backend != "serial":
            from repro.accel.pool import RoundingPool

            with RoundingPool(problem, config.matcher, parallel) as pool:
                return _bp_run(problem, config, tracer, bus, pool,
                               init_messages,
                               matching_backend=matching_backend,
                               **checkpointing)
        return _bp_run(problem, config, tracer, bus, None, init_messages,
                       matching_backend=matching_backend, **checkpointing)


def _bp_run(
    problem: NetworkAlignmentProblem,
    config: BPConfig,
    tracer: Any | None,
    bus,
    pool: "RoundingPool | None" = None,
    init_messages: tuple[np.ndarray, np.ndarray] | None = None,
    *,
    matching_backend: str | None = None,
    checkpoint_every: int = 0,
    checkpoint_store: Any | None = None,
    checkpoint_key: str = "bp",
    resume: bool = False,
) -> AlignmentResult:
    """The BP iteration body (Listing 2)."""
    matcher: Matcher = make_matcher(config.matcher, backend=matching_backend)
    ell = problem.ell
    s_mat = problem.squares
    perm = problem.squares_transpose_perm
    m = problem.n_edges_l
    nnz = s_mat.nnz
    alpha, beta = problem.alpha, problem.beta
    w_vec = problem.weights
    rows_nz = s_mat.row_of_nonzero()

    # Messages and preallocated temporaries (no allocation inside the loop).
    if init_messages is None:
        y = np.zeros(m)
        z = np.zeros(m)
    else:
        y0, z0 = init_messages
        y = np.array(y0, dtype=np.float64, copy=True)
        z = np.array(z0, dtype=np.float64, copy=True)
        if y.shape != (m,) or z.shape != (m,):
            raise ConfigurationError(
                f"init_messages must be two vectors of length {m}"
            )
    sk = np.zeros(nnz)
    y_new = np.empty(m)
    z_new = np.empty(m)
    sk_new = np.empty(nnz)
    f_vals = np.empty(nnz)
    f_mat = CSRMatrix(s_mat.shape, s_mat.indptr, s_mat.indices, f_vals,
                      _checked=True)
    f_vals = f_mat.data  # alias: row_sums reads through the matrix
    d_vec = np.empty(m)
    omax_row = np.empty(m)
    omax_col = np.empty(m)
    scratch = np.empty(m)

    tracker = BestTracker()
    history: list[IterationRecord] = []
    # Passing the matcher lets kernel matchers build their group plan
    # here, outside the iteration loop.
    workspace = RoundingWorkspace.for_problem(problem, matcher=matcher)
    flush_every = max(1, config.batch // 2)
    pending: list[tuple[int, np.ndarray, np.ndarray]] = []

    start_k = 1
    if resume and checkpoint_store is not None:
        ckpt = checkpoint_store.load(checkpoint_key)
        if ckpt is not None:
            from repro.resilience.checkpoint import SolverCheckpoint

            if ckpt.method != "bp":
                raise ConfigurationError(
                    f"checkpoint {checkpoint_key!r} was written by "
                    f"method {ckpt.method!r}, not 'bp'; resuming from it "
                    "would silently restart the solve"
                )

            state = ckpt.state
            if state["y"].shape != (m,) or state["sk"].shape != (nnz,):
                raise ConfigurationError(
                    f"checkpoint {checkpoint_key!r} does not match this "
                    "problem's dimensions"
                )
            y[:] = state["y"]
            z[:] = state["z"]
            sk[:] = state["sk"]
            SolverCheckpoint.restore_tracker(tracker, state["tracker"])
            history.extend(state["history"])
            start_k = ckpt.iteration + 1
    last_ckpt = start_k - 1

    def maybe_checkpoint(k: int) -> None:
        """Snapshot at a flush boundary (``pending`` is empty here)."""
        nonlocal last_ckpt
        if (
            checkpoint_store is None
            or checkpoint_every <= 0
            or k - last_ckpt < checkpoint_every
        ):
            return
        from repro.resilience.checkpoint import SolverCheckpoint

        checkpoint_store.save(
            checkpoint_key,
            SolverCheckpoint(
                method="bp",
                iteration=k,
                state={
                    "y": y.copy(),
                    "z": z.copy(),
                    "sk": sk.copy(),
                    "tracker": SolverCheckpoint.snapshot_tracker(tracker),
                    "history": list(history),
                },
            ),
        )
        last_ckpt = k

    def flush_batch() -> None:
        """Round all stored iterates (the paper's batched rounding).

        The ``2 × batch`` matchings share no state; with a pool they run
        on the configured backend and the parent replays tracker offers
        and ``rounding`` events in serial order, so histories and event
        streams are backend-independent.
        """
        if not pending:
            return
        batch_records: list[tuple[Any, ...]] = []
        if pool is not None:
            rounded = pool.round_many(
                [vec for _, y_it, z_it in pending for vec in (y_it, z_it)]
            )
        for idx, (it, y_it, z_it) in enumerate(pending):
            if pool is not None:
                obj_y, wp_y, op_y, match_y = rounded[2 * idx]
                obj_z, wp_z, op_z, match_z = rounded[2 * idx + 1]
                tracker.offer(obj_y, wp_y, op_y, match_y, y_it, "y", it)
                tracker.offer(obj_z, wp_z, op_z, match_z, z_it, "z", it)
                if bus.active:
                    emit_rounding(bus, pool.matcher_kind, "y", it, obj_y,
                                  wp_y, op_y, match_y.cardinality)
                    emit_rounding(bus, pool.matcher_kind, "z", it, obj_z,
                                  wp_z, op_z, match_z.cardinality)
            else:
                obj_y, wp_y, op_y, match_y = round_heuristic(
                    problem, y_it, matcher=matcher, tracker=tracker,
                    source="y", iteration=it, workspace=workspace,
                )
                obj_z, wp_z, op_z, match_z = round_heuristic(
                    problem, z_it, matcher=matcher, tracker=tracker,
                    source="z", iteration=it, workspace=workspace,
                )
            if obj_y >= obj_z:
                rec = (it, obj_y, wp_y, op_y, "y", match_y, match_z)
            else:
                rec = (it, obj_z, wp_z, op_z, "z", match_y, match_z)
            batch_records.append(rec)
        if tracer is not None:
            # Replay the *distinct* y- and z-rounding matchings — the
            # batch ran 2 × batch independent tasks, and the simulated
            # cost of each depends on the matching it produced.
            tracer.rounding_batch(
                "rounding",
                [m for r in batch_records for m in (r[5], r[6])],
                ell,
            )
        for it, obj, wp, op, src, _, _ in batch_records:
            history.append(
                IterationRecord(
                    iteration=it,
                    objective=obj,
                    weight_part=wp,
                    overlap_part=op,
                    upper_bound=float("nan"),
                    source=src,
                    gamma=config.gamma,
                )
            )
            if bus.active:
                bus.emit(
                    "iteration",
                    method="bp",
                    iteration=it,
                    objective=obj,
                    weight_part=wp,
                    overlap_part=op,
                    upper_bound=float("nan"),
                    source=src,
                    gamma=config.gamma,
                )
                bus.metrics.counter(
                    "repro_solver_iterations_total", method="bp"
                ).inc()
                bus.metrics.gauge(
                    "repro_best_objective", method="bp"
                ).set(tracker.best_objective)
        pending.clear()

    for k in range(start_k, config.n_iter + 1):
        # Chaos consultation point: lets a FaultPlan crash a solve
        # mid-iteration so supervised retries exercise warm-resume.
        maybe_inject("solver.iteration", task_index=k)

        # ---- Step 1: compute F = bound_{0,β}[βS + S^(k)ᵀ] ----------
        np.take(sk, perm, out=f_vals)
        f_vals += beta
        np.clip(f_vals, 0.0, beta, out=f_vals)
        if tracer is not None:
            tracer.uniform_loop("compute_f", n_items=nnz,
                                cost_per_item=1.0, bytes_per_item=24.0,
                                random_frac=0.6)

        # ---- Step 2: d = αw + Fe -----------------------------------
        row_sums(f_mat, out=d_vec)
        d_vec += alpha * w_vec
        if tracer is not None:
            tracer.uniform_loop("compute_d", n_items=m,
                                cost_per_item=max(1.0, nnz / max(m, 1)),
                                bytes_per_item=8.0 * (1 + nnz / max(m, 1)),
                                random_frac=0.1)

        # ---- Step 3: othermax --------------------------------------
        othermax_col(ell, z, out=omax_col, scratch=scratch)
        othermax_row(ell, y, out=omax_row)
        np.subtract(d_vec, omax_col, out=y_new)
        np.subtract(d_vec, omax_row, out=z_new)
        if tracer is not None:
            group_sizes = np.concatenate(
                [np.diff(ell.row_ptr), np.diff(ell.col_ptr)]
            ).astype(np.float64)
            tracer.loop(
                "othermax",
                costs=2.0 * group_sizes,
                bytes_per_item=group_sizes * 16.0,
                random_frac=0.5,
            )

        # ---- Step 4: update S^(k) ----------------------------------
        np.take(y_new + z_new - d_vec, rows_nz, out=sk_new)
        sk_new -= f_vals
        if tracer is not None:
            tracer.uniform_loop("update_s", n_items=nnz,
                                cost_per_item=1.0, bytes_per_item=32.0,
                                random_frac=0.4)

        # ---- Step 5: damping ---------------------------------------
        if config.damping == "power":
            gamma_k = config.gamma ** k
        elif config.damping == "fixed":
            gamma_k = config.gamma
        else:
            gamma_k = 1.0
        for new, old in ((y_new, y), (z_new, z), (sk_new, sk)):
            new *= gamma_k
            new += (1.0 - gamma_k) * old
            old[:] = new
        if tracer is not None:
            tracer.uniform_loop("damping", n_items=2 * m + nnz,
                                cost_per_item=2.0, bytes_per_item=24.0)

        # ---- Step 6: (batched) rounding ----------------------------
        pending.append((k, y.copy(), z.copy()))
        if len(pending) >= flush_every or k == config.n_iter:
            flush_batch()
            maybe_checkpoint(k)
        if tracer is not None:
            tracer.end_iteration()

    flush_batch()
    return _finalize(problem, tracker, history, config)


def _finalize(
    problem: NetworkAlignmentProblem,
    tracker: BestTracker,
    history: list[IterationRecord],
    config: BPConfig,
) -> AlignmentResult:
    """Apply the final exact rounding and package the result."""
    history.sort(key=lambda r: r.iteration)
    objective = tracker.best_objective
    weight_part = tracker.best_weight_part
    overlap_part = tracker.best_overlap_part
    matching = tracker.best_matching
    if config.final_exact and tracker.best_vector is not None:
        obj_e, wp_e, op_e, match_e = round_heuristic(
            problem, tracker.best_vector, matcher="exact"
        )
        if obj_e >= objective:
            objective, weight_part, overlap_part, matching = (
                obj_e, wp_e, op_e, match_e,
            )
    return AlignmentResult(
        matching=matching,
        objective=objective,
        weight_part=weight_part,
        overlap_part=overlap_part,
        best_upper_bound=float("inf"),
        history=history,
        method=f"bp[batch={config.batch},{config.matcher}]",
        params={
            "n_iter": config.n_iter,
            "gamma": config.gamma,
            "batch": config.batch,
            "matcher": config.matcher,
            "damping": config.damping,
            "alpha": problem.alpha,
            "beta": problem.beta,
        },
    )
