"""Belief propagation (BP) for network alignment (Listing 2).

Max-product message passing over the factor-graph form of the alignment
QP, with the simplifications of Bayati–Gleich et al.: two edge-indexed
message vectors **y**, **z** (one per matching constraint side), one
square-indexed message matrix **S**:sup:`(k)`, the ``othermax``
competition kernels, geometric damping by γ:sup:`k`, and a rounding step
per iteration.

Unlike Klau's method, the iterates are *independent* of the matcher used
for rounding (§VII) — the matching only scores iterates.  That makes BP
the method whose quality survives the approximate-matching substitution,
and it enables the paper's **batched rounding**: store the last ``r``
message vectors and round them together (as parallel tasks).  Here the
batch semantics are preserved (flush every ``r/2`` iterations) so the
work trace matches BP(batch=r); results are identical to immediate
rounding by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.configtools import ConfigBase
from repro.core.othermax import othermax_col, othermax_grouped, othermax_row
from repro.core.problem import NetworkAlignmentProblem
from repro.core.result import AlignmentResult, BestTracker, IterationRecord
from repro.core.rounding import (
    Matcher,
    RoundingWorkspace,
    emit_rounding,
    make_matcher,
    round_heuristic,
)
from repro.errors import ConfigurationError
from repro.matching.result import MatchingResult
from repro.observe import get_bus
from repro.resilience.faults import maybe_inject
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import row_sums

__all__ = ["BPConfig", "belief_propagation_align"]


@dataclass(frozen=True)
class BPConfig(ConfigBase):
    """Parameters of the BP method.

    ``batch`` is the paper's rounding batch size ``r`` (number of stored
    weight vectors; each iteration produces two, so a flush happens every
    ``max(1, r // 2)`` iterations).  ``matcher`` picks the rounding
    oracle.  ``gamma`` is the damping base of Step 5.  Serializes via
    :meth:`~repro.configtools.ConfigBase.to_dict` /
    :meth:`~repro.configtools.ConfigBase.from_dict`.
    """

    n_iter: int = 100
    gamma: float = 0.99
    batch: int = 1
    matcher: str = "approx"
    final_exact: bool = True
    #: Damping variant (the paper describes one; [13] has others):
    #: "power"  — convex combination with weight γ^k (Listing 2, default);
    #: "fixed"  — convex combination with constant weight γ;
    #: "none"   — raw message updates (BP may oscillate; rounding still
    #:            scores every iterate, so the best is kept).
    damping: str = "power"
    #: Incremental (``warm_from=``) runs only: message-residual threshold
    #: below which an edge is considered settled and leaves the active
    #: set.  Ignored by cold runs.
    active_tol: float = 1e-9
    #: Incremental runs only: when the active set exceeds this fraction
    #: of |E_L|, the iteration falls back to a full sweep (the subset
    #: gather/scatter machinery costs more than vectorized full passes).
    active_max_frac: float = 0.5
    #: Incremental runs only: round the iterates every this many
    #: iterations (cold runs round every iteration; warm runs start from
    #: a good matching, so sparser rounding trades nothing for speed).
    round_every: int = 1
    #: Accepted on every public config (common surface, round-tripped by
    #: ``to_dict``/``from_dict``); BP itself is deterministic and does
    #: not consume it.
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_iter < 1:
            raise ConfigurationError("n_iter must be >= 1")
        if not (0.0 < self.gamma <= 1.0):
            raise ConfigurationError("gamma must be in (0, 1]")
        if self.batch < 1:
            raise ConfigurationError("batch must be >= 1")
        if self.damping not in ("power", "fixed", "none"):
            raise ConfigurationError(f"unknown damping {self.damping!r}")
        if self.active_tol < 0:
            raise ConfigurationError("active_tol must be >= 0")
        if not (0.0 < self.active_max_frac <= 1.0):
            raise ConfigurationError("active_max_frac must be in (0, 1]")
        if self.round_every < 1:
            raise ConfigurationError("round_every must be >= 1")


def belief_propagation_align(
    problem: NetworkAlignmentProblem,
    config: BPConfig | None = None,
    tracer: Any | None = None,
    *,
    parallel: "ParallelConfig | None" = None,
    init_messages: tuple[np.ndarray, np.ndarray] | None = None,
    checkpoint_every: int = 0,
    checkpoint_store: Any | None = None,
    checkpoint_key: str = "bp",
    resume: bool = False,
    warm_from: "WarmState | None" = None,
    keep_state: bool = False,
) -> AlignmentResult:
    """Run the BP message-passing method on ``problem``.

    ``tracer`` optionally records per-step work traces (see
    :mod:`repro.machine.trace`) for the scaling study.  When the
    :mod:`repro.observe` bus has sinks attached, the run is wrapped in a
    ``bp.align`` span and emits one ``iteration`` event per iteration
    (plus ``rounding``/``matching`` events from the rounding layer).

    ``parallel`` optionally selects an execution backend
    (:class:`repro.accel.ParallelConfig`) for the batched rounding step:
    the ``2 × batch`` matchings of each flush are independent, and the
    process backend fans them out over shared memory.  Results are
    bit-identical to the serial path for stateless matchers (see
    ``docs/performance.md``).

    ``init_messages`` optionally warm-starts the message vectors: a
    ``(y0, z0)`` pair of length ``|E_L|`` (both copied).  The multilevel
    V-cycle (:mod:`repro.multilevel`) uses this to seed each refine pass
    from the expanded coarse solution; default ``None`` keeps the
    all-zeros cold start of Listing 2.

    ``checkpoint_every`` > 0 snapshots the full iterate state (**y**,
    **z**, **S**:sup:`(k)`, the best tracker, the history) into
    ``checkpoint_store`` under ``checkpoint_key`` at batch-flush
    boundaries (so no pending rounding work is lost); ``resume`` picks
    any such snapshot back up and continues from the iteration after
    it, bit-identically to the uninterrupted run (damping uses the
    absolute iteration number).  A found snapshot takes precedence over
    ``init_messages``.  Stateless matchers only: ``exact-warm`` carries
    cross-call dual state a snapshot cannot capture.

    ``warm_from`` switches to *incremental* BP: messages are seeded from
    a prior converged :class:`repro.incremental.WarmState` (keyed by L
    edges, so it survives problem edits) and each iteration updates only
    an *active set* of edges, expanded outward from the perturbation via
    residual thresholds (``config.active_tol``) and falling back to full
    sweeps past ``config.active_max_frac``.  When the seeding finds the
    problem unchanged, the prior matching is returned bit-identically
    without iterating.  Incompatible with ``tracer``, ``init_messages``,
    checkpointing, and non-serial ``parallel``.

    ``keep_state`` asks the run to attach its final message state to
    ``result.solver_state`` so a :class:`repro.incremental.WarmState`
    can be captured from it.
    """
    config = config or BPConfig()
    if (checkpoint_every > 0 or resume) and config.matcher == "exact-warm":
        raise ConfigurationError(
            "checkpoint/resume requires a stateless matcher; "
            "'exact-warm' keeps dual potentials between matchings that "
            "a checkpoint does not capture"
        )
    bus = get_bus()
    if warm_from is not None:
        if tracer is not None or init_messages is not None:
            raise ConfigurationError(
                "warm_from is incompatible with tracer/init_messages"
            )
        if checkpoint_every > 0 or resume:
            raise ConfigurationError(
                "warm_from is incompatible with checkpointing; the warm "
                "state already is the resume point"
            )
        if parallel is not None and parallel.backend != "serial":
            raise ConfigurationError(
                "incremental BP is serial; drop the parallel backend "
                "(active-set iterations are too small to fan out)"
            )
        matching_backend = None if parallel is None \
            else parallel.matching_backend
        with bus.trace(
            "bp.realign", matcher=config.matcher, n_iter=config.n_iter,
            batch=config.batch, damping=config.damping,
        ):
            return _bp_warm_run(problem, config, bus, warm_from,
                                matching_backend=matching_backend,
                                keep_state=keep_state)
    matching_backend = None if parallel is None else parallel.matching_backend
    checkpointing = {
        "checkpoint_every": checkpoint_every,
        "checkpoint_store": checkpoint_store,
        "checkpoint_key": checkpoint_key,
        "resume": resume,
    }
    with bus.trace(
        "bp.align", matcher=config.matcher, n_iter=config.n_iter,
        batch=config.batch, damping=config.damping,
        backend="serial" if parallel is None else parallel.backend,
        matching_backend=matching_backend,
    ):
        if parallel is not None and parallel.backend != "serial":
            from repro.accel.pool import RoundingPool

            with RoundingPool(problem, config.matcher, parallel) as pool:
                return _bp_run(problem, config, tracer, bus, pool,
                               init_messages,
                               matching_backend=matching_backend,
                               keep_state=keep_state, **checkpointing)
        return _bp_run(problem, config, tracer, bus, None, init_messages,
                       matching_backend=matching_backend,
                       keep_state=keep_state, **checkpointing)


def _bp_run(
    problem: NetworkAlignmentProblem,
    config: BPConfig,
    tracer: Any | None,
    bus,
    pool: "RoundingPool | None" = None,
    init_messages: tuple[np.ndarray, np.ndarray] | None = None,
    *,
    matching_backend: str | None = None,
    checkpoint_every: int = 0,
    checkpoint_store: Any | None = None,
    checkpoint_key: str = "bp",
    resume: bool = False,
    keep_state: bool = False,
) -> AlignmentResult:
    """The BP iteration body (Listing 2)."""
    matcher: Matcher = make_matcher(config.matcher, backend=matching_backend)
    ell = problem.ell
    s_mat = problem.squares
    perm = problem.squares_transpose_perm
    m = problem.n_edges_l
    nnz = s_mat.nnz
    alpha, beta = problem.alpha, problem.beta
    w_vec = problem.weights
    rows_nz = s_mat.row_of_nonzero()

    # Messages and preallocated temporaries (no allocation inside the loop).
    if init_messages is None:
        y = np.zeros(m)
        z = np.zeros(m)
    else:
        y0, z0 = init_messages
        y = np.array(y0, dtype=np.float64, copy=True)
        z = np.array(z0, dtype=np.float64, copy=True)
        if y.shape != (m,) or z.shape != (m,):
            raise ConfigurationError(
                f"init_messages must be two vectors of length {m}"
            )
    sk = np.zeros(nnz)
    y_new = np.empty(m)
    z_new = np.empty(m)
    sk_new = np.empty(nnz)
    f_vals = np.empty(nnz)
    f_mat = CSRMatrix(s_mat.shape, s_mat.indptr, s_mat.indices, f_vals,
                      _checked=True)
    f_vals = f_mat.data  # alias: row_sums reads through the matrix
    d_vec = np.empty(m)
    omax_row = np.empty(m)
    omax_col = np.empty(m)
    scratch = np.empty(m)

    tracker = BestTracker()
    history: list[IterationRecord] = []
    # Passing the matcher lets kernel matchers build their group plan
    # here, outside the iteration loop.
    workspace = RoundingWorkspace.for_problem(problem, matcher=matcher)
    flush_every = max(1, config.batch // 2)
    pending: list[tuple[int, np.ndarray, np.ndarray]] = []

    start_k = 1
    if resume and checkpoint_store is not None:
        ckpt = checkpoint_store.load(checkpoint_key)
        if ckpt is not None:
            from repro.resilience.checkpoint import SolverCheckpoint

            if ckpt.method != "bp":
                raise ConfigurationError(
                    f"checkpoint {checkpoint_key!r} was written by "
                    f"method {ckpt.method!r}, not 'bp'; resuming from it "
                    "would silently restart the solve"
                )

            state = ckpt.state
            if state["y"].shape != (m,) or state["sk"].shape != (nnz,):
                raise ConfigurationError(
                    f"checkpoint {checkpoint_key!r} does not match this "
                    "problem's dimensions"
                )
            y[:] = state["y"]
            z[:] = state["z"]
            sk[:] = state["sk"]
            SolverCheckpoint.restore_tracker(tracker, state["tracker"])
            history.extend(state["history"])
            start_k = ckpt.iteration + 1
    last_ckpt = start_k - 1

    def maybe_checkpoint(k: int) -> None:
        """Snapshot at a flush boundary (``pending`` is empty here)."""
        nonlocal last_ckpt
        if (
            checkpoint_store is None
            or checkpoint_every <= 0
            or k - last_ckpt < checkpoint_every
        ):
            return
        from repro.resilience.checkpoint import SolverCheckpoint

        checkpoint_store.save(
            checkpoint_key,
            SolverCheckpoint(
                method="bp",
                iteration=k,
                state={
                    "y": y.copy(),
                    "z": z.copy(),
                    "sk": sk.copy(),
                    "tracker": SolverCheckpoint.snapshot_tracker(tracker),
                    "history": list(history),
                },
            ),
        )
        last_ckpt = k

    def flush_batch() -> None:
        """Round all stored iterates (the paper's batched rounding).

        The ``2 × batch`` matchings share no state; with a pool they run
        on the configured backend and the parent replays tracker offers
        and ``rounding`` events in serial order, so histories and event
        streams are backend-independent.
        """
        if not pending:
            return
        batch_records: list[tuple[Any, ...]] = []
        if pool is not None:
            rounded = pool.round_many(
                [vec for _, y_it, z_it in pending for vec in (y_it, z_it)]
            )
        for idx, (it, y_it, z_it) in enumerate(pending):
            if pool is not None:
                obj_y, wp_y, op_y, match_y = rounded[2 * idx]
                obj_z, wp_z, op_z, match_z = rounded[2 * idx + 1]
                tracker.offer(obj_y, wp_y, op_y, match_y, y_it, "y", it)
                tracker.offer(obj_z, wp_z, op_z, match_z, z_it, "z", it)
                if bus.active:
                    emit_rounding(bus, pool.matcher_kind, "y", it, obj_y,
                                  wp_y, op_y, match_y.cardinality)
                    emit_rounding(bus, pool.matcher_kind, "z", it, obj_z,
                                  wp_z, op_z, match_z.cardinality)
            else:
                obj_y, wp_y, op_y, match_y = round_heuristic(
                    problem, y_it, matcher=matcher, tracker=tracker,
                    source="y", iteration=it, workspace=workspace,
                )
                obj_z, wp_z, op_z, match_z = round_heuristic(
                    problem, z_it, matcher=matcher, tracker=tracker,
                    source="z", iteration=it, workspace=workspace,
                )
            if obj_y >= obj_z:
                rec = (it, obj_y, wp_y, op_y, "y", match_y, match_z)
            else:
                rec = (it, obj_z, wp_z, op_z, "z", match_y, match_z)
            batch_records.append(rec)
        if tracer is not None:
            # Replay the *distinct* y- and z-rounding matchings — the
            # batch ran 2 × batch independent tasks, and the simulated
            # cost of each depends on the matching it produced.
            tracer.rounding_batch(
                "rounding",
                [m for r in batch_records for m in (r[5], r[6])],
                ell,
            )
        for it, obj, wp, op, src, _, _ in batch_records:
            history.append(
                IterationRecord(
                    iteration=it,
                    objective=obj,
                    weight_part=wp,
                    overlap_part=op,
                    upper_bound=float("nan"),
                    source=src,
                    gamma=config.gamma,
                )
            )
            if bus.active:
                bus.emit(
                    "iteration",
                    method="bp",
                    iteration=it,
                    objective=obj,
                    weight_part=wp,
                    overlap_part=op,
                    upper_bound=float("nan"),
                    source=src,
                    gamma=config.gamma,
                )
                bus.metrics.counter(
                    "repro_solver_iterations_total", method="bp"
                ).inc()
                bus.metrics.gauge(
                    "repro_best_objective", method="bp"
                ).set(tracker.best_objective)
        pending.clear()

    for k in range(start_k, config.n_iter + 1):
        # Chaos consultation point: lets a FaultPlan crash a solve
        # mid-iteration so supervised retries exercise warm-resume.
        maybe_inject("solver.iteration", task_index=k)

        # ---- Step 1: compute F = bound_{0,β}[βS + S^(k)ᵀ] ----------
        np.take(sk, perm, out=f_vals)
        f_vals += beta
        np.clip(f_vals, 0.0, beta, out=f_vals)
        if tracer is not None:
            tracer.uniform_loop("compute_f", n_items=nnz,
                                cost_per_item=1.0, bytes_per_item=24.0,
                                random_frac=0.6)

        # ---- Step 2: d = αw + Fe -----------------------------------
        row_sums(f_mat, out=d_vec)
        d_vec += alpha * w_vec
        if tracer is not None:
            tracer.uniform_loop("compute_d", n_items=m,
                                cost_per_item=max(1.0, nnz / max(m, 1)),
                                bytes_per_item=8.0 * (1 + nnz / max(m, 1)),
                                random_frac=0.1)

        # ---- Step 3: othermax --------------------------------------
        othermax_col(ell, z, out=omax_col, scratch=scratch)
        othermax_row(ell, y, out=omax_row)
        np.subtract(d_vec, omax_col, out=y_new)
        np.subtract(d_vec, omax_row, out=z_new)
        if tracer is not None:
            group_sizes = np.concatenate(
                [np.diff(ell.row_ptr), np.diff(ell.col_ptr)]
            ).astype(np.float64)
            tracer.loop(
                "othermax",
                costs=2.0 * group_sizes,
                bytes_per_item=group_sizes * 16.0,
                random_frac=0.5,
            )

        # ---- Step 4: update S^(k) ----------------------------------
        np.take(y_new + z_new - d_vec, rows_nz, out=sk_new)
        sk_new -= f_vals
        if tracer is not None:
            tracer.uniform_loop("update_s", n_items=nnz,
                                cost_per_item=1.0, bytes_per_item=32.0,
                                random_frac=0.4)

        # ---- Step 5: damping ---------------------------------------
        if config.damping == "power":
            gamma_k = config.gamma ** k
        elif config.damping == "fixed":
            gamma_k = config.gamma
        else:
            gamma_k = 1.0
        for new, old in ((y_new, y), (z_new, z), (sk_new, sk)):
            new *= gamma_k
            new += (1.0 - gamma_k) * old
            old[:] = new
        if tracer is not None:
            tracer.uniform_loop("damping", n_items=2 * m + nnz,
                                cost_per_item=2.0, bytes_per_item=24.0)

        # ---- Step 6: (batched) rounding ----------------------------
        pending.append((k, y.copy(), z.copy()))
        if len(pending) >= flush_every or k == config.n_iter:
            flush_batch()
            maybe_checkpoint(k)
        if tracer is not None:
            tracer.end_iteration()

    flush_batch()
    result = _finalize(problem, tracker, history, config)
    if keep_state:
        result.solver_state = {"y": y.copy(), "z": z.copy(),
                               "sk": sk.copy()}
    return result


def _concat_ranges(
    starts: np.ndarray, stops: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``[start, stop)`` index ranges into one array.

    Returns ``(indices, lengths)``; empty ranges contribute nothing but
    keep their slot in ``lengths`` (callers need per-range boundaries).
    """
    lens = (stops - starts).astype(np.int64)
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), lens
    block_starts = np.concatenate([[0], np.cumsum(lens)[:-1]])
    out = np.repeat(starts, lens) + (
        np.arange(total, dtype=np.int64) - np.repeat(block_starts, lens)
    )
    return out, lens


def _bp_warm_run(
    problem: NetworkAlignmentProblem,
    config: BPConfig,
    bus,
    warm: "WarmState",
    *,
    matching_backend: str | None = None,
    keep_state: bool = False,
) -> AlignmentResult:
    """Incremental BP: seed from a warm state, iterate on an active set.

    Messages transfer from ``warm`` by L-edge/square key
    (:func:`repro.incremental.state.seed_from_warm`); each iteration then
    recomputes Steps 1–5 only for the *active* edges, and the active set
    expands outward along othermax groups and **S** adjacency from edges
    whose damped update moved more than ``config.active_tol``.  When it
    exceeds ``config.active_max_frac · m`` the iteration falls back to
    the vectorized full sweep (the gather/scatter bookkeeping would cost
    more than it saves); when it empties, the run stops early — the
    remaining iterations are provably no-ops.
    """
    from repro.incremental.state import seed_from_warm

    matcher: Matcher = make_matcher(config.matcher,
                                    backend=matching_backend)
    ell = problem.ell
    s_mat = problem.squares
    perm = problem.squares_transpose_perm
    m = problem.n_edges_l
    alpha, beta = problem.alpha, problem.beta
    w_vec = problem.weights
    rows_nz = s_mat.row_of_nonzero()
    s_indptr, s_indices = s_mat.indptr, s_mat.indices
    row_ptr, col_ptr, col_perm = ell.row_ptr, ell.col_ptr, ell.col_perm

    seed = seed_from_warm(problem, warm, s_mat)

    # Rebuild the prior matching on the new problem (mates whose L edge
    # vanished are unmatched) — warm rounding starts from it, and the
    # unchanged shortcut returns it outright.
    mate_a = warm.mate_a.copy()
    matched = np.flatnonzero(mate_a >= 0)
    if len(matched):
        eids = ell.lookup_edges(matched, mate_a[matched])
        mate_a[matched[eids < 0]] = -1
    prior = MatchingResult.from_mates(ell, mate_a)
    x_prior = prior.indicator(m)
    obj_p, wp_p, op_p = problem.objective_parts(x_prior)

    def warm_params(iterations_run: int, full_sweeps: int) -> dict:
        return {
            "n_iter": config.n_iter,
            "gamma": config.gamma,
            "matcher": config.matcher,
            "damping": config.damping,
            "alpha": problem.alpha,
            "beta": problem.beta,
            "warm": True,
            "active_tol": config.active_tol,
            "active_max_frac": config.active_max_frac,
            "round_every": config.round_every,
            "iterations_run": iterations_run,
            "full_sweeps": full_sweeps,
            "carried_edges": seed.carried_edges,
            "carried_squares": seed.carried_squares,
        }

    if seed.unchanged:
        # Nothing moved: the converged messages are still a fixed point
        # and the prior matching is returned bit-identically.
        if bus.active:
            bus.emit("active_set_size", iteration=0, active=0, total=m,
                     full_sweep=False)
        result = AlignmentResult(
            matching=prior,
            objective=obj_p,
            weight_part=wp_p,
            overlap_part=op_p,
            best_upper_bound=float("inf"),
            history=[],
            method=f"bp-warm[{config.matcher}]",
            params=warm_params(0, 0),
        )
        if keep_state:
            result.solver_state = {"y": seed.y.copy(),
                                   "z": seed.z.copy(),
                                   "sk": seed.sk.copy()}
        return result

    y, z, sk = seed.y, seed.z, seed.sk
    active = seed.active
    nnz = s_mat.nnz
    f_vals = np.empty(nnz)
    f_mat = CSRMatrix(s_mat.shape, s_mat.indptr, s_mat.indices, f_vals,
                      _checked=True)
    f_vals = f_mat.data
    # Establish F and d consistent with the seeded messages, once, so
    # subset iterations can update both in place.
    np.take(sk, perm, out=f_vals)
    f_vals += beta
    np.clip(f_vals, 0.0, beta, out=f_vals)
    d_vec = np.empty(m)
    row_sums(f_mat, out=d_vec)
    d_vec += alpha * w_vec
    omax_row = np.empty(m)
    omax_col = np.empty(m)
    scratch = np.empty(m)

    tracker = BestTracker()
    history: list[IterationRecord] = []
    workspace = RoundingWorkspace.for_problem(problem, matcher=matcher)
    tracker.offer(obj_p, wp_p, op_p, prior, x_prior, "warm", 0)
    history.append(IterationRecord(
        iteration=0, objective=obj_p, weight_part=wp_p,
        overlap_part=op_p, upper_bound=float("nan"), source="warm",
        gamma=config.gamma,
    ))

    def do_round(k: int) -> None:
        """Round the current y and z iterates (serial, immediate)."""
        obj_y, wp_y, op_y, _ = round_heuristic(
            problem, y, matcher=matcher, tracker=tracker,
            source="y", iteration=k, workspace=workspace,
        )
        obj_z, wp_z, op_z, _ = round_heuristic(
            problem, z, matcher=matcher, tracker=tracker,
            source="z", iteration=k, workspace=workspace,
        )
        if obj_y >= obj_z:
            obj, wp, op, src = obj_y, wp_y, op_y, "y"
        else:
            obj, wp, op, src = obj_z, wp_z, op_z, "z"
        history.append(IterationRecord(
            iteration=k, objective=obj, weight_part=wp, overlap_part=op,
            upper_bound=float("nan"), source=src, gamma=config.gamma,
        ))
        if bus.active:
            bus.emit(
                "iteration", method="bp-warm", iteration=k,
                objective=obj, weight_part=wp, overlap_part=op,
                upper_bound=float("nan"), source=src, gamma=config.gamma,
            )
            bus.metrics.counter(
                "repro_solver_iterations_total", method="bp-warm"
            ).inc()
            bus.metrics.gauge(
                "repro_best_objective", method="bp-warm"
            ).set(tracker.best_objective)

    def frontier(hot: np.ndarray) -> np.ndarray:
        """Edges whose next update can differ because ``hot`` moved."""
        if not len(hot):
            return np.empty(0, dtype=np.int64)
        groups_a = np.unique(ell.edge_a[hot])
        groups_b = np.unique(ell.edge_b[hot])
        e_rows, _ = _concat_ranges(row_ptr[groups_a],
                                   row_ptr[groups_a + 1])
        pos_cols, _ = _concat_ranges(col_ptr[groups_b],
                                     col_ptr[groups_b + 1])
        s_pos, _ = _concat_ranges(s_indptr[hot], s_indptr[hot + 1])
        return np.unique(np.concatenate(
            [hot, e_rows, col_perm[pos_cols], s_indices[s_pos]]
        ))

    full_sweeps = 0
    iterations_run = 0
    last_rounded = 0
    for k in range(1, config.n_iter + 1):
        if len(active) == 0:
            break  # converged: every remaining update is a no-op
        maybe_inject("solver.iteration", task_index=k)
        full = len(active) > config.active_max_frac * m
        if config.damping == "power":
            gamma_k = config.gamma ** k
        elif config.damping == "fixed":
            gamma_k = config.gamma
        else:
            gamma_k = 1.0
        if bus.active:
            bus.emit("active_set_size", iteration=k, active=len(active),
                     total=m, full_sweep=full)
            bus.metrics.histogram("repro_active_set_fraction").observe(
                len(active) / max(m, 1)
            )
        if full:
            full_sweeps += 1
            np.take(sk, perm, out=f_vals)
            f_vals += beta
            np.clip(f_vals, 0.0, beta, out=f_vals)
            row_sums(f_mat, out=d_vec)
            d_vec += alpha * w_vec
            othermax_col(ell, z, out=omax_col, scratch=scratch)
            othermax_row(ell, y, out=omax_row)
            y_upd = d_vec - omax_col
            z_upd = d_vec - omax_row
            sk_upd = np.take(y_upd + z_upd - d_vec, rows_nz) - f_vals
            y_next = gamma_k * y_upd + (1.0 - gamma_k) * y
            z_next = gamma_k * z_upd + (1.0 - gamma_k) * z
            resid = np.maximum(np.abs(y_next - y), np.abs(z_next - z))
            hot = np.flatnonzero(resid > config.active_tol)
            y, z = y_next, z_next
            sk *= (1.0 - gamma_k)
            sk += gamma_k * sk_upd
        else:
            # ---- Steps 1+2 on the active rows of S ------------------
            s_pos, row_lens = _concat_ranges(s_indptr[active],
                                             s_indptr[active + 1])
            if len(s_pos):
                f_sub = sk[perm[s_pos]]
                f_sub += beta
                np.clip(f_sub, 0.0, beta, out=f_sub)
                f_vals[s_pos] = f_sub
            rs = np.zeros(len(active))
            nz_rows = row_lens > 0
            if len(s_pos):
                seg_starts = np.concatenate(
                    [[0], np.cumsum(row_lens)[:-1]]
                )
                rs[nz_rows] = np.add.reduceat(
                    f_vals[s_pos], seg_starts[nz_rows]
                )
            d_vec[active] = alpha * w_vec[active] + rs
            # ---- Step 3: othermax over the touched groups -----------
            groups_a = np.unique(ell.edge_a[active])
            e_rows, glens_a = _concat_ranges(row_ptr[groups_a],
                                             row_ptr[groups_a + 1])
            ptr_a = np.concatenate([[0], np.cumsum(glens_a)])
            scratch[e_rows] = othermax_grouped(y[e_rows], ptr_a)
            om_row_act = scratch[active].copy()
            groups_b = np.unique(ell.edge_b[active])
            pos_cols, glens_b = _concat_ranges(col_ptr[groups_b],
                                               col_ptr[groups_b + 1])
            e_cols = col_perm[pos_cols]
            ptr_b = np.concatenate([[0], np.cumsum(glens_b)])
            scratch[e_cols] = othermax_grouped(z[e_cols], ptr_b)
            om_col_act = scratch[active]
            d_act = d_vec[active]
            y_upd = d_act - om_col_act
            z_upd = d_act - om_row_act
            # ---- Step 4: S^(k) on the active rows -------------------
            sk_upd = (np.repeat(y_upd + z_upd - d_act, row_lens)
                      - f_vals[s_pos])
            # ---- Step 5: damping, residuals, in-place commit --------
            y_next = gamma_k * y_upd + (1.0 - gamma_k) * y[active]
            z_next = gamma_k * z_upd + (1.0 - gamma_k) * z[active]
            resid = np.maximum(np.abs(y_next - y[active]),
                               np.abs(z_next - z[active]))
            hot = active[resid > config.active_tol]
            y[active] = y_next
            z[active] = z_next
            sk[s_pos] = gamma_k * sk_upd + (1.0 - gamma_k) * sk[s_pos]
        iterations_run = k
        if k % config.round_every == 0 or k == config.n_iter:
            do_round(k)
            last_rounded = k
        active = frontier(hot)
    if iterations_run > last_rounded:
        do_round(iterations_run)

    result = _finalize(problem, tracker, history, config)
    result.method = f"bp-warm[{config.matcher}]"
    result.params = warm_params(iterations_run, full_sweeps)
    if keep_state:
        result.solver_state = {"y": y.copy(), "z": z.copy(),
                               "sk": sk.copy()}
    return result


def _finalize(
    problem: NetworkAlignmentProblem,
    tracker: BestTracker,
    history: list[IterationRecord],
    config: BPConfig,
) -> AlignmentResult:
    """Apply the final exact rounding and package the result."""
    history.sort(key=lambda r: r.iteration)
    objective = tracker.best_objective
    weight_part = tracker.best_weight_part
    overlap_part = tracker.best_overlap_part
    matching = tracker.best_matching
    if config.final_exact and tracker.best_vector is not None:
        obj_e, wp_e, op_e, match_e = round_heuristic(
            problem, tracker.best_vector, matcher="exact"
        )
        if obj_e >= objective:
            objective, weight_part, overlap_part, matching = (
                obj_e, wp_e, op_e, match_e,
            )
    return AlignmentResult(
        matching=matching,
        objective=objective,
        weight_part=weight_part,
        overlap_part=overlap_part,
        best_upper_bound=float("inf"),
        history=history,
        method=f"bp[batch={config.batch},{config.matcher}]",
        params={
            "n_iter": config.n_iter,
            "gamma": config.gamma,
            "batch": config.batch,
            "matcher": config.matcher,
            "damping": config.damping,
            "alpha": problem.alpha,
            "beta": problem.beta,
        },
    )
