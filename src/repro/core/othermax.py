"""The ``othermax`` kernels of the BP method (paper §III-B).

For a weight vector **g** over the edges of L::

    [othermaxrow(g)]_{i,i'} = bound_{0,∞}[ max_{(i,k') ∈ E_L, k' ≠ i'} g_{i,k'} ]

i.e. within each row (edges sharing the A-vertex ``i``), every entry is
replaced by the row maximum — except the maximum itself, which is replaced
by the second largest — then clipped below at 0.  ``othermaxcol`` is the
same over columns (edges sharing a B-vertex).

Vectorization: two segmented reductions.  The first finds each group's
max; the second re-reduces with one occurrence of the max masked out,
yielding the second max.  Columns reuse the row kernel through L's
column permutation (the paper parallelizes these "over columns and rows,
respectively" — here each is a handful of NumPy passes).
"""

from __future__ import annotations

import numpy as np

from repro._util import asarray_f64
from repro.errors import DimensionError
from repro.sparse.bipartite import BipartiteGraph

__all__ = ["othermax_grouped", "othermax_row", "othermax_col"]


def othermax_grouped(
    values: np.ndarray, indptr: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Apply the othermax transform within each CSR-style group.

    ``values`` is any float vector; ``indptr`` delimits groups (must cover
    ``values`` exactly).  Elements of singleton groups have no "other"
    edge, so they get ``bound_{0,∞}(max ∅) = 0``.
    """
    values = asarray_f64(values)
    n_items = len(values)
    if int(indptr[-1]) != n_items or int(indptr[0]) != 0:
        raise DimensionError("indptr does not partition values")
    if out is None:
        out = np.empty(n_items, dtype=np.float64)
    if n_items == 0:
        return out
    n_groups = len(indptr) - 1
    starts = indptr[:-1]
    lengths = np.diff(indptr)
    nonempty = lengths > 0
    group_of = np.repeat(np.arange(n_groups, dtype=np.int64), lengths)

    # First pass: per-group maximum.
    gmax = np.full(n_groups, -np.inf)
    gmax[nonempty] = np.maximum.reduceat(values, starts[nonempty])

    # Identify the first position achieving each group's max.
    pos = np.arange(n_items, dtype=np.int64)
    at_max_pos = np.where(values == gmax[group_of], pos, n_items)
    first_max = np.full(n_groups, n_items, dtype=np.int64)
    first_max[nonempty] = np.minimum.reduceat(at_max_pos, starts[nonempty])

    # Second pass: per-group max with that occurrence removed.
    masked = values.copy()
    masked[first_max[nonempty]] = -np.inf
    gsecond = np.full(n_groups, -np.inf)
    gsecond[nonempty] = np.maximum.reduceat(masked, starts[nonempty])

    is_the_max = pos == first_max[group_of]
    np.copyto(out, np.where(is_the_max, gsecond[group_of], gmax[group_of]))
    np.maximum(out, 0.0, out=out)  # bound_{0,∞}
    return out


def othermax_row(
    ell: BipartiteGraph, g: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """``othermaxrow``: groups are edges sharing an A-vertex."""
    g = asarray_f64(g)
    if g.shape != (ell.n_edges,):
        raise DimensionError("g has wrong length")
    return othermax_grouped(g, ell.row_ptr, out=out)


def othermax_col(
    ell: BipartiteGraph,
    g: np.ndarray,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """``othermaxcol``: groups are edges sharing a B-vertex.

    Uses L's column permutation to reuse the row kernel ("we simply use
    the permutation array to pull elements from appropriate memory
    locations", §IV-A).  ``scratch`` may hold a preallocated temp of the
    same length.
    """
    g = asarray_f64(g)
    if g.shape != (ell.n_edges,):
        raise DimensionError("g has wrong length")
    perm = ell.col_perm
    permuted = g[perm] if scratch is None else np.take(g, perm, out=scratch)
    col_result = othermax_grouped(permuted, ell.col_ptr)
    if out is None:
        out = np.empty(ell.n_edges, dtype=np.float64)
    out[perm] = col_result
    return out
