"""Result containers for the alignment methods."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.matching.result import MatchingResult

__all__ = ["IterationRecord", "AlignmentResult", "BestTracker"]


@dataclass(frozen=True)
class IterationRecord:
    """Per-iteration diagnostics.

    ``objective`` is the rounded lower bound at this iteration (the best
    of the vectors rounded here); ``upper_bound`` is Klau's per-iteration
    upper bound (``NaN`` for BP, which has none); ``source`` names the
    heuristic vector that was rounded ("wbar", "y", "z").
    """

    iteration: int
    objective: float
    weight_part: float
    overlap_part: float
    upper_bound: float
    source: str
    gamma: float


@dataclass
class BestTracker:
    """Tracks the best rounded solution seen, per Table I's round_heuristic.

    Keeps the full heuristic vector ``g`` that produced the best rounded
    objective so the caller can re-round it exactly at the end (§VII:
    "we perform one final step of exact maximum weight matching").
    """

    best_objective: float = -np.inf
    best_weight_part: float = 0.0
    best_overlap_part: float = 0.0
    best_matching: MatchingResult | None = None
    best_vector: np.ndarray | None = None
    best_source: str = ""
    best_iteration: int = -1

    def offer(
        self,
        objective: float,
        weight_part: float,
        overlap_part: float,
        matching: MatchingResult,
        vector: np.ndarray,
        source: str,
        iteration: int,
    ) -> bool:
        """Record a candidate; return True if it became the new best."""
        if objective > self.best_objective:
            self.best_objective = objective
            self.best_weight_part = weight_part
            self.best_overlap_part = overlap_part
            self.best_matching = matching
            self.best_vector = vector.copy()
            self.best_source = source
            self.best_iteration = iteration
            return True
        return False


@dataclass
class AlignmentResult:
    """Outcome of one alignment run.

    Attributes
    ----------
    matching:
        The returned matching (after the optional final exact rounding).
    objective, weight_part, overlap_part:
        Objective value and its two components for ``matching``.
    best_upper_bound:
        Klau's best (smallest) upper bound, ``inf`` for BP.
    history:
        One :class:`IterationRecord` per iteration.
    method, params:
        Provenance for reports.
    """

    matching: MatchingResult
    objective: float
    weight_part: float
    overlap_part: float
    best_upper_bound: float
    history: list[IterationRecord] = field(default_factory=list)
    method: str = ""
    params: dict[str, Any] = field(default_factory=dict)
    #: Final message state (``{"y", "z", "sk"}``) captured when the run
    #: was asked to keep it (``keep_state=True``); feeds warm
    #: realignment (:mod:`repro.incremental`).  ``None`` otherwise.
    solver_state: dict[str, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def iterations(self) -> int:
        """Number of iterations executed."""
        return len(self.history)

    def objective_trace(self) -> np.ndarray:
        """Per-iteration rounded objective values."""
        return np.array([r.objective for r in self.history])

    def upper_bound_trace(self) -> np.ndarray:
        """Per-iteration upper bounds (Klau) as an array."""
        return np.array([r.upper_bound for r in self.history])

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.method}: objective={self.objective:.4f} "
            f"(weight={self.weight_part:.4f}, overlap={self.overlap_part:.0f}) "
            f"after {self.iterations} iterations, "
            f"|M|={self.matching.cardinality}"
        )
