"""Klau's matching-relaxation (MR) method for network alignment (Listing 1).

Lagrangian decomposition of the MILP form: each row of **S** contributes a
small exact matching (Step 1) whose values tighten an upper bound, the
combined weights are rounded to a feasible matching (Step 3), and the
multipliers **U** are nudged by a subgradient step toward agreement
between the row matchings and the global matching (Step 5), with the step
size γ halved whenever the upper bound stalls for ``mstep`` iterations.

Storage follows §IV-B: **U** lives on the fixed structure of **S** (only
the strictly-upper entries are ever nonzero; ``U − Uᵀ`` is realized with
the one-time transpose permutation), the row-matching weights
``(β/2)S + U − Uᵀ`` are a single fused vector expression, and the row
subproblems are solved exactly (the paper never approximates Step 1,
"because the problems in each row tend to be small").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.configtools import ConfigBase
from repro.core.problem import NetworkAlignmentProblem
from repro.core.result import AlignmentResult, BestTracker, IterationRecord
from repro.core.rounding import Matcher, make_matcher, round_heuristic
from repro.core.row_match import RowMatcher
from repro.errors import ConfigurationError
from repro.observe import get_bus
from repro.resilience.faults import maybe_inject

__all__ = ["KlauConfig", "klau_align"]


@dataclass(frozen=True)
class KlauConfig(ConfigBase):
    """Parameters of Klau's method.

    ``gamma`` and ``mstep`` follow the paper's scaling experiments
    (γ given, mstep given; §VIII uses γ=0.99, mstep=10; the original
    netalign code defaults to γ=0.4, mstep=25 which round better on small
    problems — we default to the latter).  ``u_bound`` clips the
    multipliers to ``[-u_bound, +u_bound]`` (the listing's ``bound F``
    step); the default is unbounded, which rounds best — the symmetry
    constraints the multipliers enforce are equalities.  ``matcher`` picks
    the Step-3 ``bipartite_match`` oracle — the substitution the paper
    studies.
    """

    n_iter: int = 500
    gamma: float = 0.4
    mstep: int = 25
    matcher: str = "exact"
    #: Keep dual potentials between the Step-3 matchings
    #: (:class:`repro.matching.warm.ExactMatcher`): ``wbar`` drifts by a
    #: decaying subgradient step on one fixed L structure, which is the
    #: warm-start use case.  Only meaningful with ``matcher="exact"``
    #: (it upgrades the oracle to ``"exact-warm"``).
    warm_start: bool = False
    u_bound: float = float("inf")
    final_exact: bool = True
    stall_tolerance: float = 1e-12
    #: "polyak" scales the subgradient step by (UB − LB)/‖g‖² with γ as
    #: the relaxation factor θ (the netalign reference behaviour);
    #: "fixed" uses γ directly as in the printed pseudocode.
    step_rule: str = "polyak"
    #: Stop early when best upper bound − best objective ≤ gap_tolerance:
    #: the method "can actually detect when it has reached the optimal
    #: point" (§III-A).
    gap_tolerance: float = 1e-9
    #: Accepted on every public config (common surface, round-tripped by
    #: ``to_dict``/``from_dict``); Klau's method is deterministic and
    #: does not consume it.
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_iter < 1:
            raise ConfigurationError("n_iter must be >= 1")
        if not (0 < self.gamma):
            raise ConfigurationError("gamma must be positive")
        if self.mstep < 1:
            raise ConfigurationError("mstep must be >= 1")
        if self.u_bound < 0:
            raise ConfigurationError("u_bound must be non-negative")
        if self.step_rule not in ("polyak", "fixed"):
            raise ConfigurationError(
                f"unknown step_rule {self.step_rule!r}"
            )
        if self.warm_start and self.matcher not in ("exact", "exact-warm"):
            raise ConfigurationError(
                "warm_start requires the exact matcher "
                f"(got matcher={self.matcher!r})"
            )

    def matcher_kind(self) -> str:
        """The rounding oracle actually instantiated for Step 3."""
        if self.warm_start and self.matcher == "exact":
            return "exact-warm"
        return self.matcher


def klau_align(
    problem: NetworkAlignmentProblem,
    config: KlauConfig | None = None,
    tracer: Any | None = None,
    *,
    checkpoint_every: int = 0,
    checkpoint_store: Any | None = None,
    checkpoint_key: str = "klau",
    resume: bool = False,
) -> AlignmentResult:
    """Run Klau's MR method on ``problem``.

    ``tracer`` is an optional duck-typed work-trace collector (see
    :class:`repro.machine.trace.AlgorithmTracer`); when given, each of the
    five steps of Listing 1 records its per-item work so the machine model
    can replay the iteration.  When the :mod:`repro.observe` bus has
    sinks attached, the run is wrapped in a ``klau.align`` span and emits
    one ``iteration`` event per iteration, carrying the upper bound and
    the live step size γ.

    ``checkpoint_every`` > 0 snapshots the multiplier vector **U**, the
    step-control scalars (γ, best upper bound, stall counter), the best
    tracker and the history into ``checkpoint_store`` under
    ``checkpoint_key``; ``resume`` picks any such snapshot back up,
    bit-identically to the uninterrupted run.  Stateless Step-3 oracles
    only: ``exact-warm``/``warm_start`` carries cross-call dual state a
    snapshot cannot capture, so checkpointing it raises
    :class:`~repro.errors.ConfigurationError`.
    """
    config = config or KlauConfig()
    if (
        (checkpoint_every > 0 or resume)
        and config.matcher_kind() == "exact-warm"
    ):
        raise ConfigurationError(
            "checkpoint/resume requires a stateless matcher; "
            "'exact-warm' keeps dual potentials between matchings that "
            "a checkpoint does not capture"
        )
    bus = get_bus()
    with bus.trace(
        "klau.align", matcher=config.matcher, n_iter=config.n_iter,
        step_rule=config.step_rule,
    ):
        return _klau_run(
            problem, config, tracer, bus,
            checkpoint_every=checkpoint_every,
            checkpoint_store=checkpoint_store,
            checkpoint_key=checkpoint_key,
            resume=resume,
        )


def _klau_run(
    problem: NetworkAlignmentProblem,
    config: KlauConfig,
    tracer: Any | None,
    bus,
    *,
    checkpoint_every: int = 0,
    checkpoint_store: Any | None = None,
    checkpoint_key: str = "klau",
    resume: bool = False,
) -> AlignmentResult:
    """The MR iteration body (Listing 1)."""
    matcher: Matcher = make_matcher(config.matcher_kind())
    ell = problem.ell
    s_mat = problem.squares
    perm = problem.squares_transpose_perm
    m = problem.n_edges_l
    nnz = s_mat.nnz
    alpha, beta = problem.alpha, problem.beta
    half_beta = beta / 2.0
    u_bound = config.u_bound

    rows_nz = s_mat.row_of_nonzero()
    cols_nz = s_mat.indices
    upper_idx = np.flatnonzero(cols_nz > rows_nz)
    mirror_idx = perm[upper_idx]
    up_rows = rows_nz[upper_idx]
    up_cols = cols_nz[upper_idx]
    row_matcher = RowMatcher(s_mat, ell)
    indptr = s_mat.indptr
    nonempty_rows = np.flatnonzero(np.diff(indptr) > 0)
    row_sizes = np.diff(indptr)

    u_vals = np.zeros(nnz)
    m_vals = np.empty(nnz)
    sl_vals = np.zeros(nnz)
    d_vec = np.zeros(m)
    wbar = np.empty(m)
    w_vec = problem.weights

    tracker = BestTracker()
    history: list[IterationRecord] = []
    gamma = config.gamma
    best_upper = np.inf
    stall = 0

    start_k = 1
    if resume and checkpoint_store is not None:
        ckpt = checkpoint_store.load(checkpoint_key)
        if ckpt is not None:
            from repro.resilience.checkpoint import SolverCheckpoint

            if ckpt.method != "klau-mr":
                raise ConfigurationError(
                    f"checkpoint {checkpoint_key!r} was written by "
                    f"method {ckpt.method!r}, not 'klau-mr'; resuming "
                    "from it would silently restart the solve"
                )

            state = ckpt.state
            if state["u_vals"].shape != (nnz,):
                raise ConfigurationError(
                    f"checkpoint {checkpoint_key!r} does not match this "
                    "problem's dimensions"
                )
            u_vals[:] = state["u_vals"]
            gamma = state["gamma"]
            best_upper = state["best_upper"]
            stall = state["stall"]
            SolverCheckpoint.restore_tracker(tracker, state["tracker"])
            history.extend(state["history"])
            start_k = ckpt.iteration + 1
    last_ckpt = start_k - 1

    def maybe_checkpoint(k: int) -> None:
        nonlocal last_ckpt
        if (
            checkpoint_store is None
            or checkpoint_every <= 0
            or k - last_ckpt < checkpoint_every
        ):
            return
        from repro.resilience.checkpoint import SolverCheckpoint

        checkpoint_store.save(
            checkpoint_key,
            SolverCheckpoint(
                method="klau-mr",
                iteration=k,
                state={
                    "u_vals": u_vals.copy(),
                    "gamma": gamma,
                    "best_upper": best_upper,
                    "stall": stall,
                    "tracker": SolverCheckpoint.snapshot_tracker(tracker),
                    "history": list(history),
                },
            ),
        )
        last_ckpt = k

    for k in range(start_k, config.n_iter + 1):
        # Chaos consultation point (see repro.resilience): lets a
        # FaultPlan crash a solve mid-iteration so supervised retries
        # exercise warm-resume.
        maybe_inject("solver.iteration", task_index=k)

        # ---- Step 1: row match -------------------------------------
        np.subtract(u_vals, u_vals[perm], out=m_vals)
        m_vals += half_beta
        row_matcher.solve(m_vals, d_vec, sl_vals)
        if tracer is not None:
            # Each row entry costs ~a sort step + a few B&B visits.
            tracer.loop(
                "row_match",
                costs=16.0 * row_sizes[nonempty_rows].astype(np.float64),
                bytes_per_item=row_sizes[nonempty_rows].astype(np.float64) * 32,
                random_frac=0.5,
            )

        # ---- Step 2: daxpy -----------------------------------------
        np.multiply(w_vec, alpha, out=wbar)
        wbar += d_vec
        if tracer is not None:
            tracer.uniform_loop("daxpy", n_items=m, cost_per_item=1.0,
                                bytes_per_item=24.0)

        # ---- Step 3: match -----------------------------------------
        matching = matcher(ell, wbar)
        x = matching.indicator(m)
        if tracer is not None:
            tracer.matching("match", matching, ell)

        # ---- Step 4: objective / bounds ----------------------------
        obj, weight_part, overlap_part = problem.objective_parts(x)
        upper = float(np.dot(wbar, x))
        tracker.offer(obj, weight_part, overlap_part, matching, wbar, "wbar", k)
        if tracer is not None:
            tracer.uniform_loop("objective", n_items=m + nnz,
                                cost_per_item=1.0, bytes_per_item=16.0,
                                random_frac=0.5)

        # ---- Step 5: update U --------------------------------------
        # Subgradient of the relaxed symmetry constraint on each upper
        # pair: g_ef = x_e·SL_ef − x_f·SL_fe.
        subgrad = (
            x[up_rows] * sl_vals[upper_idx] - x[up_cols] * sl_vals[mirror_idx]
        )
        if config.step_rule == "polyak":
            norm_sq = float(np.dot(subgrad, subgrad))
            gap = max(min(best_upper, upper) - tracker.best_objective, 0.0)
            step = gamma * gap / norm_sq if norm_sq > 0 else 0.0
        else:
            step = gamma
        delta = u_vals[upper_idx] - step * subgrad
        np.clip(delta, -u_bound, u_bound, out=delta)
        u_vals[upper_idx] = delta
        if tracer is not None:
            tracer.uniform_loop("update_u", n_items=len(upper_idx),
                                cost_per_item=2.0, bytes_per_item=40.0,
                                random_frac=0.5)

        # Subgradient step control: halve γ when the upper bound has not
        # improved within the last ``mstep`` iterations.
        if upper < best_upper - config.stall_tolerance:
            best_upper = upper
            stall = 0
        else:
            stall += 1
            if stall >= config.mstep:
                gamma /= 2.0
                stall = 0

        history.append(
            IterationRecord(
                iteration=k,
                objective=obj,
                weight_part=weight_part,
                overlap_part=overlap_part,
                upper_bound=upper,
                source="wbar",
                gamma=gamma,
            )
        )
        if bus.active:
            bus.emit(
                "iteration",
                method="klau-mr",
                iteration=k,
                objective=obj,
                weight_part=weight_part,
                overlap_part=overlap_part,
                upper_bound=upper,
                source="wbar",
                gamma=gamma,
            )
            bus.metrics.counter(
                "repro_solver_iterations_total", method="klau-mr"
            ).inc()
            bus.metrics.gauge(
                "repro_best_objective", method="klau-mr"
            ).set(tracker.best_objective)
            bus.metrics.gauge(
                "repro_best_upper_bound", method="klau-mr"
            ).set(best_upper)
        if tracer is not None:
            tracer.end_iteration()
        maybe_checkpoint(k)
        if best_upper - tracker.best_objective <= config.gap_tolerance:
            break  # provably optimal (§III-A)

    return _finalize(problem, tracker, history, best_upper, config)


def _finalize(
    problem: NetworkAlignmentProblem,
    tracker: BestTracker,
    history: list[IterationRecord],
    best_upper: float,
    config: KlauConfig,
) -> AlignmentResult:
    """Apply the final exact rounding and package the result."""
    objective = tracker.best_objective
    weight_part = tracker.best_weight_part
    overlap_part = tracker.best_overlap_part
    matching = tracker.best_matching
    if config.final_exact and tracker.best_vector is not None:
        obj_e, wp_e, op_e, match_e = round_heuristic(
            problem, tracker.best_vector, matcher="exact"
        )
        if obj_e >= objective:
            objective, weight_part, overlap_part, matching = (
                obj_e, wp_e, op_e, match_e,
            )
    return AlignmentResult(
        matching=matching,
        objective=objective,
        weight_part=weight_part,
        overlap_part=overlap_part,
        best_upper_bound=best_upper,
        history=history,
        method=f"klau-mr[{config.matcher_kind()}]",
        params={
            "n_iter": config.n_iter,
            "gamma": config.gamma,
            "mstep": config.mstep,
            "matcher": config.matcher,
            "warm_start": config.warm_start,
            "alpha": problem.alpha,
            "beta": problem.beta,
        },
    )
