"""Construction of the squares matrix **S** (paper §II).

``S`` is |E_L|-by-|E_L|; ``S[(i,i'), (j,j')] = 1`` exactly when ``(i, j)``
is an edge of A and ``(i', j')`` is an edge of B.  Each nonzero therefore
witnesses a *square* ``i–j`` / ``i'–j'`` / the two L edges, i.e. a
potential overlapped edge pair.  ``S`` is structurally symmetric and
0/1-valued, and its row distribution is highly irregular (the paper's
motivation for dynamic loop scheduling).

The construction is vectorized: for every L edge we expand the Cartesian
product of its endpoints' adjacency lists and hash-join the candidate
pairs against L's sorted edge keys, in bounded-size chunks to keep peak
memory proportional to the chunk.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError
from repro.graph.graph import Graph
from repro.sparse.bipartite import BipartiteGraph
from repro.sparse.build import coo_to_csr
from repro.sparse.csr import CSRMatrix

__all__ = ["build_squares", "count_squares_bruteforce", "squares_coo"]


def squares_coo(
    a_graph: Graph,
    b_graph: Graph,
    ell: BipartiteGraph,
    row_ids: np.ndarray | None = None,
    *,
    chunk_pairs: int = 1 << 22,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand the squares of a set of L edges to COO ``(rows, cols)``.

    For each L edge ``e`` in ``row_ids`` (all edges when ``None``), the
    Cartesian product of its endpoints' adjacency lists is hash-joined
    against L, yielding one ``(e, f)`` pair per square.  This is the
    expansion :func:`build_squares` runs over all rows; the incremental
    delta path (:mod:`repro.incremental`) runs it over just the dirty
    rows of a perturbed problem.
    """
    if a_graph.n != ell.n_a or b_graph.n != ell.n_b:
        raise DimensionError(
            "L vertex sets do not match A and B "
            f"({ell.n_a}/{a_graph.n}, {ell.n_b}/{b_graph.n})"
        )
    if row_ids is None:
        row_ids = np.arange(ell.n_edges, dtype=np.int64)
    else:
        row_ids = np.asarray(row_ids, dtype=np.int64)
    n_rows = len(row_ids)
    deg_pairs = (
        a_graph.degrees()[ell.edge_a[row_ids]]
        * b_graph.degrees()[ell.edge_b[row_ids]]
    ).astype(np.int64)

    rows_out: list[np.ndarray] = []
    cols_out: list[np.ndarray] = []
    start = 0
    while start < n_rows:
        stop = start
        pairs = 0
        while stop < n_rows and (
            pairs == 0 or pairs + deg_pairs[stop] <= chunk_pairs
        ):
            pairs += int(deg_pairs[stop])
            stop += 1
        e_ids = row_ids[start:stop]
        counts = deg_pairs[start:stop]
        total = int(counts.sum())
        start = stop
        if total == 0:
            continue
        e_rep = np.repeat(e_ids, counts)
        # Position of each candidate within its edge's Cartesian block.
        block_starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            block_starts, counts
        )
        deg_b_rep = np.repeat(b_graph.degrees()[ell.edge_b[e_ids]], counts)
        ai = offsets // deg_b_rep
        bi = offsets % deg_b_rep
        j_a = a_graph.adj[a_graph.indptr[ell.edge_a[e_rep]] + ai]
        j_b = b_graph.adj[b_graph.indptr[ell.edge_b[e_rep]] + bi]
        f = ell.lookup_edges(j_a, j_b)
        hit = f >= 0
        rows_out.append(e_rep[hit])
        cols_out.append(f[hit])

    if rows_out:
        return np.concatenate(rows_out), np.concatenate(cols_out)
    return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)


def build_squares(
    a_graph: Graph,
    b_graph: Graph,
    ell: BipartiteGraph,
    *,
    chunk_pairs: int = 1 << 22,
) -> CSRMatrix:
    """Build **S** for the alignment instance ``(A, B, L)``.

    Parameters
    ----------
    a_graph, b_graph:
        The two undirected input graphs.
    ell:
        The candidate-match graph L; rows/cols of **S** are its edges.
    chunk_pairs:
        Upper bound on the number of candidate ``(j, j')`` pairs expanded
        at once (memory knob; the result is identical for any value).
    """
    m = ell.n_edges
    rows, cols = squares_coo(a_graph, b_graph, ell, chunk_pairs=chunk_pairs)
    # Each (e, f) pair is produced at most once, so "error" dedup doubles
    # as a structural sanity check.
    return coo_to_csr(rows, cols, 1.0, (m, m), dedup="error")


def count_squares_bruteforce(
    a_graph: Graph, b_graph: Graph, ell: BipartiteGraph
) -> int:
    """O(|E_L|²) reference count of nnz(S); tests only."""
    count = 0
    for e in range(ell.n_edges):
        i, ip = int(ell.edge_a[e]), int(ell.edge_b[e])
        for f in range(ell.n_edges):
            j, jp = int(ell.edge_a[f]), int(ell.edge_b[f])
            if a_graph.has_edge(i, j) and b_graph.has_edge(ip, jp):
                count += 1
    return count
