"""IsoRank-style spectral baseline for network alignment.

The dmela-scere instance the paper evaluates on comes from Singh, Xu &
Berger's IsoRank (§VI-B, [5]); its algorithmic idea is a natural third
baseline next to the LP relaxation: iterate a PageRank-like operator on
the candidate-pair space,

    x ← μ · P x + (1 − μ) · w̃,

where ``P`` is the column-normalized squares matrix **S** (a random walk
over *pairs of overlapping candidate pairs*) and ``w̃`` the normalized
similarity prior, then round the stationary scores with one bipartite
matching.  The heuristic weight space is exactly the one BP and MR search
(edges of L), so the same rounding oracles apply — which makes quality
comparisons across all three methods meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.configtools import ConfigBase
from repro.core.problem import NetworkAlignmentProblem
from repro.core.result import AlignmentResult, IterationRecord
from repro.core.rounding import round_heuristic
from repro.errors import ConfigurationError
from repro.observe import get_bus
from repro.sparse.ops import spmv

__all__ = ["IsoRankConfig", "isorank_align", "isorank_scores"]


@dataclass(frozen=True)
class IsoRankConfig(ConfigBase):
    """Parameters of the IsoRank-style iteration.

    ``mu`` balances topology (the S walk) against the similarity prior
    **w** — IsoRank's α parameter; ``tolerance`` stops the power
    iteration on the L1 change of the score vector.
    """

    mu: float = 0.85
    n_iter: int = 100
    tolerance: float = 1e-9
    matcher: str = "exact"
    #: Accepted on every public config (common surface, round-tripped by
    #: ``to_dict``/``from_dict``); the power iteration is deterministic
    #: and does not consume it.
    seed: int | None = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.mu < 1.0):
            raise ConfigurationError("mu must be in [0, 1)")
        if self.n_iter < 1:
            raise ConfigurationError("n_iter must be >= 1")
        if self.tolerance < 0:
            raise ConfigurationError("tolerance must be non-negative")


def isorank_scores(
    problem: NetworkAlignmentProblem, config: IsoRankConfig | None = None
) -> tuple[np.ndarray, int]:
    """Run the power iteration; return (scores over L's edges, iterations).

    The operator column-normalizes **S** (dangling pairs redistribute to
    the prior, PageRank-style) and the prior is **w** normalized to sum
    one; scores therefore stay a probability vector — tested.
    """
    config = config or IsoRankConfig()
    s_mat = problem.squares
    m = problem.n_edges_l
    if m == 0:
        return np.empty(0), 0
    w = problem.weights.clip(min=0.0)
    prior = (
        w / w.sum() if w.sum() > 0 else np.full(m, 1.0 / m)
    )
    # Column sums of S (== row sums: S is structurally symmetric with
    # unit values, but we compute columns explicitly for clarity).
    col_sums = np.zeros(m)
    np.add.at(col_sums, s_mat.indices, s_mat.data)
    inv_cols = np.divide(
        1.0, col_sums, out=np.zeros(m), where=col_sums > 0
    )

    x = prior.copy()
    scaled = np.empty(m)
    iterations = 0
    for k in range(1, config.n_iter + 1):
        iterations = k
        np.multiply(x, inv_cols, out=scaled)
        walked = spmv(s_mat, scaled)
        dangling = float(x[col_sums == 0].sum())
        x_new = config.mu * (walked + dangling * prior) + (
            1.0 - config.mu
        ) * prior
        delta = float(np.abs(x_new - x).sum())
        x = x_new
        if delta <= config.tolerance:
            break
    return x, iterations


def isorank_align(
    problem: NetworkAlignmentProblem, config: IsoRankConfig | None = None
) -> AlignmentResult:
    """IsoRank iteration + one rounding step."""
    config = config or IsoRankConfig()
    bus = get_bus()
    with bus.trace("isorank.align", matcher=config.matcher, mu=config.mu):
        scores, iterations = isorank_scores(problem, config)
        obj, weight_part, overlap_part, matching = round_heuristic(
            problem, scores, matcher=config.matcher
        )
    record = IterationRecord(
        iteration=iterations,
        objective=obj,
        weight_part=weight_part,
        overlap_part=overlap_part,
        upper_bound=float("nan"),
        source="isorank",
        gamma=float("nan"),
    )
    if bus.active:
        bus.emit(
            "iteration",
            method="isorank",
            iteration=iterations,
            objective=obj,
            weight_part=weight_part,
            overlap_part=overlap_part,
            upper_bound=float("nan"),
            source="isorank",
            gamma=float("nan"),
        )
        bus.metrics.counter(
            "repro_solver_iterations_total", method="isorank"
        ).inc(iterations)
    return AlignmentResult(
        matching=matching,
        objective=obj,
        weight_part=weight_part,
        overlap_part=overlap_part,
        best_upper_bound=float("inf"),
        history=[record],
        method=f"isorank[{config.matcher}]",
        params={
            "mu": config.mu,
            "n_iter": config.n_iter,
            "matcher": config.matcher,
            "alpha": problem.alpha,
            "beta": problem.beta,
        },
    )
