"""Computational steering of alignments (paper §IX).

The paper motivates its speedup with interactive use: *"given the result
of a network alignment problem, users may want to fix certain problematic
alignments by removing potential matches from L and recompute."*  This
module provides exactly that workflow:

* :func:`forbid_pairs` — remove candidate edges from L;
* :func:`pin_pairs` — force chosen pairs into every solution (their
  endpoints' other candidates are removed, the pinned edge is kept);
* :class:`SteeringSession` — an iterative wrapper: solve → inspect →
  pin/forbid → re-solve, tracking the constraint history.

Pinning is implemented by *restricting* L rather than by weight tricks,
so any matcher and either method can be used unchanged, and pinned pairs
are guaranteed to be matchable (they have no competitors left).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.bp import BPConfig, belief_propagation_align
from repro.core.klau import KlauConfig, klau_align
from repro.core.problem import NetworkAlignmentProblem
from repro.core.result import AlignmentResult
from repro.errors import ConfigurationError, ValidationError
from repro.sparse.bipartite import BipartiteGraph

__all__ = ["forbid_pairs", "pin_pairs", "SteeringSession"]


def _pairs_to_arrays(
    pairs: Iterable[tuple[int, int]]
) -> tuple[np.ndarray, np.ndarray]:
    pairs = list(pairs)
    if not pairs:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    a, b = zip(*pairs)
    return np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)


def forbid_pairs(
    problem: NetworkAlignmentProblem, pairs: Iterable[tuple[int, int]]
) -> NetworkAlignmentProblem:
    """Return a problem with the given ``(a, b)`` candidate edges removed.

    Unknown pairs are rejected loudly (a typo'd forbid should not pass
    silently).
    """
    a, b = _pairs_to_arrays(pairs)
    if len(a) == 0:
        return problem
    eids = problem.ell.lookup_edges(a, b)
    if (eids < 0).any():
        bad = [(int(x), int(y)) for x, y in zip(a[eids < 0], b[eids < 0])]
        raise ValidationError(f"cannot forbid non-candidate pairs {bad[:5]}")
    mask = np.ones(problem.n_edges_l, dtype=bool)
    mask[eids] = False
    return _with_l(problem, problem.ell.subgraph(mask))


def pin_pairs(
    problem: NetworkAlignmentProblem, pairs: Iterable[tuple[int, int]]
) -> NetworkAlignmentProblem:
    """Return a problem where each given pair is forced into the solution.

    All other candidates incident on a pinned vertex (on either side) are
    removed; the pinned edge remains the unique, strictly positive choice
    for its endpoints, so every matcher selects it.
    """
    a, b = _pairs_to_arrays(pairs)
    if len(a) == 0:
        return problem
    eids = problem.ell.lookup_edges(a, b)
    if (eids < 0).any():
        bad = [(int(x), int(y)) for x, y in zip(a[eids < 0], b[eids < 0])]
        raise ValidationError(f"cannot pin non-candidate pairs {bad[:5]}")
    if len(np.unique(a)) != len(a) or len(np.unique(b)) != len(b):
        raise ConfigurationError("pinned pairs must be vertex-disjoint")
    ell = problem.ell
    pinned_a = np.zeros(ell.n_a, dtype=bool)
    pinned_b = np.zeros(ell.n_b, dtype=bool)
    pinned_a[a] = True
    pinned_b[b] = True
    pinned_edge = np.zeros(ell.n_edges, dtype=bool)
    pinned_edge[eids] = True
    keep = pinned_edge | (
        ~pinned_a[ell.edge_a] & ~pinned_b[ell.edge_b]
    )
    sub = ell.subgraph(keep)
    # Guarantee the pinned edges carry positive weight so no matcher
    # drops them.
    new_w = sub.weights.copy()
    sub_eids = sub.lookup_edges(a, b)
    new_w[sub_eids] = np.maximum(new_w[sub_eids], 1e-6)
    return _with_l(problem, sub.with_weights(new_w))


def _with_l(
    problem: NetworkAlignmentProblem, ell: BipartiteGraph
) -> NetworkAlignmentProblem:
    """Rebuild the problem around a restricted L (S must be rebuilt)."""
    return NetworkAlignmentProblem(
        problem.a_graph,
        problem.b_graph,
        ell,
        alpha=problem.alpha,
        beta=problem.beta,
        name=problem.name,
    )


@dataclass
class SteeringSession:
    """Iterative solve → inspect → constrain → re-solve loop (§IX).

    Parameters
    ----------
    problem:
        The starting alignment problem.
    method:
        ``"bp"`` or ``"mr"``.
    config:
        Optional method config (defaults favor the fast approximate
        rounding — the interactive setting is the whole point of the
        paper's speedup).
    """

    problem: NetworkAlignmentProblem
    method: str = "bp"
    config: BPConfig | KlauConfig | None = None
    history: list[AlignmentResult] = field(default_factory=list)
    pinned: list[tuple[int, int]] = field(default_factory=list)
    forbidden: list[tuple[int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.method not in ("bp", "mr"):
            raise ConfigurationError(f"unknown method {self.method!r}")
        if self.config is None:
            self.config = (
                BPConfig(n_iter=50, matcher="approx")
                if self.method == "bp"
                else KlauConfig(n_iter=50, matcher="approx")
            )

    def solve(self) -> AlignmentResult:
        """Solve the current (constrained) problem and record the result."""
        if self.method == "bp":
            result = belief_propagation_align(self.problem, self.config)
        else:
            result = klau_align(self.problem, self.config)
        self.history.append(result)
        return result

    def pin(self, pairs: Sequence[tuple[int, int]]) -> None:
        """Force pairs into all subsequent solutions."""
        self.problem = pin_pairs(self.problem, pairs)
        self.pinned.extend((int(a), int(b)) for a, b in pairs)

    def forbid(self, pairs: Sequence[tuple[int, int]]) -> None:
        """Remove candidate pairs from all subsequent solutions."""
        self.problem = forbid_pairs(self.problem, pairs)
        self.forbidden.extend((int(a), int(b)) for a, b in pairs)

    @property
    def latest(self) -> AlignmentResult:
        """The most recent result."""
        if not self.history:
            raise ConfigurationError("no solve() has been run yet")
        return self.history[-1]

    def disagreements(
        self, reference_mate_a: np.ndarray
    ) -> list[tuple[int, int, int]]:
        """Pairs where the latest solution differs from a reference.

        Returns ``(a, solved_b, reference_b)`` triples — the natural
        worklist for an analyst deciding what to pin or forbid.
        """
        mate = self.latest.matching.mate_a
        out = []
        for a in np.flatnonzero(mate != reference_mate_a).tolist():
            out.append((a, int(mate[a]), int(reference_mate_a[a])))
        return out
