"""The rounding step: heuristic weights → matching → objective (Table I).

``round_heuristic(g)`` computes ``x = bipartite_match(g)``, evaluates the
alignment objective, and keeps track of which ``g`` produced the largest
objective.  The whole paper turns on which ``bipartite_match`` is plugged
in here:

* ``"exact"`` — sparse successive-shortest-path Hungarian
  (:func:`repro.matching.exact.max_weight_matching`);
* ``"approx"`` — the parallel locally-dominant ½-approximation of §V
  (vectorized rounds formulation);
* ``"approx-queue"`` — the same algorithm in its faithful queue form
  (slower; exposes per-round stats);
* ``"greedy"`` — serial sorted greedy (equivalent output, different cost);
* ``"suitor"`` — the proposal-based ½-approximation (same output as the
  locally-dominant matcher under distinct weights);
* ``"auction"`` — Bertsekas auction with an additive n·ε guarantee;
* ``"exact-warm"`` — the exact matcher with warm-started dual potentials
  (:class:`repro.matching.warm.ExactMatcher`): optimal weight per call,
  with the Dijkstra searches pruned by the previous call's duals when
  the same L structure is rounded repeatedly.

The approximate kinds (``"approx"``, ``"suitor"``, ``"greedy"``,
``"auction"``) additionally accept a *matching backend* —
``make_matcher(kind, backend="numpy")`` returns the round-synchronous
kernel implementation from the :mod:`repro.matching.backends` registry
(``"python"`` is the interpreted reference with identical output).  The
default ``backend=None`` keeps each kind's historical implementation.

``RoundingWorkspace`` lets hot loops (BP's batched rounding) reuse the
indicator and SpMV buffers across calls instead of allocating
``O(|E_L|)`` per rounding.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.core.problem import NetworkAlignmentProblem
from repro.core.result import BestTracker
from repro.errors import ConfigurationError, DimensionError
from repro.matching.auction import auction_matching
from repro.matching.backends import KernelMatcher
from repro.matching.exact import max_weight_matching
from repro.matching.greedy import greedy_matching
from repro.matching.kernels import KERNEL_KINDS
from repro.matching.locally_dominant import (
    locally_dominant_matching,
    locally_dominant_matching_vectorized,
)
from repro.matching.result import MatchingResult
from repro.matching.suitor import suitor_matching
from repro.matching.warm import ExactMatcher
from repro.observe import get_bus
from repro.sparse.bipartite import BipartiteGraph

__all__ = [
    "Matcher",
    "RoundingWorkspace",
    "emit_rounding",
    "make_matcher",
    "round_heuristic",
    "MATCHER_KINDS",
]


class Matcher(Protocol):
    """A ``bipartite_match`` oracle: weights over L's edges → matching."""

    def __call__(
        self, ell: BipartiteGraph, weights: np.ndarray
    ) -> MatchingResult: ...


MATCHER_KINDS = (
    "exact", "exact-warm", "approx", "approx-queue", "greedy", "suitor",
    "auction",
)


def make_matcher(kind: str, backend: str | None = None) -> Matcher:
    """Return the ``bipartite_match`` implementation named ``kind``.

    The returned callable carries a ``kind`` attribute so downstream
    instrumentation (``rounding`` events) can name the oracle in use.
    ``"exact-warm"`` returns a *stateful* matcher (a fresh
    :class:`~repro.matching.warm.ExactMatcher` per call to this factory)
    that warm-starts successive matchings on the same L structure.

    ``backend`` selects a registered matching backend for the kinds that
    have round-synchronous kernels (:data:`repro.matching.KERNEL_KINDS`):
    ``"numpy"`` for the segmented kernels, ``"python"`` for the
    interpreted reference.  Requesting a backend for a kind without
    kernels (the exact matchers, ``"approx-queue"``) raises
    :class:`~repro.errors.ConfigurationError` — silently dropping the
    request would misreport any benchmark built on it.
    """
    if backend is not None:
        if kind not in KERNEL_KINDS:
            raise ConfigurationError(
                f"matcher kind {kind!r} has no matching-backend kernels; "
                f"backends apply to {KERNEL_KINDS}"
            )
        return KernelMatcher(kind, backend)
    if kind == "exact-warm":
        return ExactMatcher(warm_start=True)
    impls: dict[str, Matcher] = {
        "exact": lambda ell, w: max_weight_matching(ell, w),
        "approx": lambda ell, w: locally_dominant_matching_vectorized(ell, w),
        "approx-queue": lambda ell, w: locally_dominant_matching(ell, w),
        "greedy": lambda ell, w: greedy_matching(ell, w),
        "suitor": lambda ell, w: suitor_matching(ell, w),
        "auction": lambda ell, w: auction_matching(ell, w),
    }
    impl = impls.get(kind)
    if impl is None:
        raise ConfigurationError(
            f"unknown matcher {kind!r}; expected one of {MATCHER_KINDS}"
        )
    impl.kind = kind  # type: ignore[attr-defined]
    return impl


@dataclass
class RoundingWorkspace:
    """Reusable buffers for :func:`round_heuristic`.

    One workspace per solver run eliminates the two ``O(|E_L|)``
    allocations each rounding call otherwise pays: the 0/1 indicator
    ``x`` and the SpMV output of the overlap term.  Buffers are
    overwritten on every call; callers must not hold views across calls.
    """

    x: np.ndarray
    spmv_out: np.ndarray

    @classmethod
    def for_problem(
        cls,
        problem: NetworkAlignmentProblem,
        matcher: Matcher | None = None,
    ) -> "RoundingWorkspace":
        """Allocate buffers for ``problem``; optionally warm a matcher.

        When ``matcher`` exposes a ``prepare(graph)`` hook (the kernel
        matchers do: it builds the cached group plan), it runs here —
        workspace construction is the natural "outside the timed loop"
        moment for one-off structure work.
        """
        m = problem.n_edges_l
        prepare = getattr(matcher, "prepare", None)
        if prepare is not None:
            prepare(problem.ell)
        return cls(x=np.zeros(m), spmv_out=np.empty(m))

    def check(self, n_edges: int) -> None:
        if self.x.shape != (n_edges,) or self.spmv_out.shape != (n_edges,):
            raise DimensionError(
                f"workspace buffers have shapes {self.x.shape}/"
                f"{self.spmv_out.shape}, expected ({n_edges},)"
            )


def emit_rounding(
    bus,
    matcher_kind: str,
    source: str,
    iteration: int,
    objective: float,
    weight_part: float,
    overlap_part: float,
    cardinality: int,
) -> None:
    """Emit one ``rounding`` event + counters (shared with repro.accel).

    The parallel rounding backend computes roundings in worker processes
    whose buses are inactive; the parent replays the same emission
    through this helper so the event stream is backend-independent.
    """
    bus.emit(
        "rounding",
        source=source,
        iteration=iteration,
        matcher=matcher_kind,
        objective=objective,
        weight_part=weight_part,
        overlap_part=overlap_part,
        cardinality=cardinality,
    )
    bus.metrics.counter("repro_roundings_total", matcher=matcher_kind).inc()
    bus.metrics.histogram("repro_rounding_objective").observe(objective)


def round_heuristic(
    problem: NetworkAlignmentProblem,
    g: np.ndarray,
    *legacy_args,
    matcher: Matcher | str | None = None,
    tracker: BestTracker | None = None,
    source: str = "g",
    iteration: int = -1,
    workspace: RoundingWorkspace | None = None,
) -> tuple[float, float, float, MatchingResult]:
    """Round a heuristic vector to a matching and score it.

    The matcher is selected with the ``matcher=`` keyword (a kind string
    from :data:`MATCHER_KINDS` or a :class:`Matcher` callable).  Passing
    the matcher positionally is deprecated; a positional *kind string*
    emits :class:`DeprecationWarning` and will stop working one release
    cycle after 1.1 (see CHANGELOG.md).

    Returns ``(objective, weight_part, overlap_part, matching)`` and, if a
    :class:`BestTracker` is given, offers the result to it (keeping "track
    of which g produced the largest objective", Table I).  A
    :class:`RoundingWorkspace` makes the call allocation-free for the
    indicator gather and the overlap SpMV (hot loops round thousands of
    times on one problem).
    """
    if legacy_args:
        if len(legacy_args) > 2:
            raise TypeError(
                "round_heuristic() takes at most 2 positional arguments "
                "besides (problem, g); use matcher=/tracker= keywords"
            )
        if matcher is not None:
            raise TypeError(
                "matcher passed both positionally and as a keyword"
            )
        matcher = legacy_args[0]
        if isinstance(matcher, str):
            warnings.warn(
                "passing the matcher kind positionally is deprecated; "
                "use round_heuristic(problem, g, matcher="
                f"{matcher!r}) — positional kind strings will be "
                "removed one cycle after 1.1",
                DeprecationWarning,
                stacklevel=2,
            )
        if len(legacy_args) == 2:
            if tracker is not None:
                raise TypeError(
                    "tracker passed both positionally and as a keyword"
                )
            tracker = legacy_args[1]
    if matcher is None:
        raise ConfigurationError(
            "round_heuristic requires matcher= (a kind string from "
            f"{MATCHER_KINDS} or a Matcher callable)"
        )
    if isinstance(matcher, str):
        matcher = make_matcher(matcher)
    matching = matcher(problem.ell, np.asarray(g, dtype=np.float64))
    if workspace is not None:
        workspace.check(problem.n_edges_l)
        x = workspace.x
        x[:] = 0.0
        x[matching.edge_ids] = 1.0
        spmv_out = workspace.spmv_out
    else:
        x = matching.indicator(problem.n_edges_l)
        spmv_out = None
    objective, weight_part, overlap_part = problem.objective_parts(
        x, out=spmv_out
    )
    if tracker is not None:
        tracker.offer(
            objective, weight_part, overlap_part, matching, g, source, iteration
        )
    bus = get_bus()
    if bus.active:
        emit_rounding(
            bus, getattr(matcher, "kind", "custom"), source, iteration,
            objective, weight_part, overlap_part, matching.cardinality,
        )
    return objective, weight_part, overlap_part, matching
