"""The rounding step: heuristic weights → matching → objective (Table I).

``round_heuristic(g)`` computes ``x = bipartite_match(g)``, evaluates the
alignment objective, and keeps track of which ``g`` produced the largest
objective.  The whole paper turns on which ``bipartite_match`` is plugged
in here:

* ``"exact"`` — sparse successive-shortest-path Hungarian
  (:func:`repro.matching.exact.max_weight_matching`);
* ``"approx"`` — the parallel locally-dominant ½-approximation of §V
  (vectorized rounds formulation);
* ``"approx-queue"`` — the same algorithm in its faithful queue form
  (slower; exposes per-round stats);
* ``"greedy"`` — serial sorted greedy (equivalent output, different cost);
* ``"suitor"`` — the proposal-based ½-approximation (same output as the
  locally-dominant matcher under distinct weights);
* ``"auction"`` — Bertsekas auction with an additive n·ε guarantee.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.core.problem import NetworkAlignmentProblem
from repro.core.result import BestTracker
from repro.errors import ConfigurationError
from repro.matching.auction import auction_matching
from repro.matching.exact import max_weight_matching
from repro.matching.greedy import greedy_matching
from repro.matching.locally_dominant import (
    locally_dominant_matching,
    locally_dominant_matching_vectorized,
)
from repro.matching.result import MatchingResult
from repro.matching.suitor import suitor_matching
from repro.observe import get_bus
from repro.sparse.bipartite import BipartiteGraph

__all__ = ["Matcher", "make_matcher", "round_heuristic", "MATCHER_KINDS"]


class Matcher(Protocol):
    """A ``bipartite_match`` oracle: weights over L's edges → matching."""

    def __call__(
        self, ell: BipartiteGraph, weights: np.ndarray
    ) -> MatchingResult: ...


MATCHER_KINDS = (
    "exact", "approx", "approx-queue", "greedy", "suitor", "auction",
)


def make_matcher(kind: str) -> Matcher:
    """Return the ``bipartite_match`` implementation named ``kind``.

    The returned callable carries a ``kind`` attribute so downstream
    instrumentation (``rounding`` events) can name the oracle in use.
    """
    impls: dict[str, Matcher] = {
        "exact": lambda ell, w: max_weight_matching(ell, w),
        "approx": lambda ell, w: locally_dominant_matching_vectorized(ell, w),
        "approx-queue": lambda ell, w: locally_dominant_matching(ell, w),
        "greedy": lambda ell, w: greedy_matching(ell, w),
        "suitor": lambda ell, w: suitor_matching(ell, w),
        "auction": lambda ell, w: auction_matching(ell, w),
    }
    impl = impls.get(kind)
    if impl is None:
        raise ConfigurationError(
            f"unknown matcher {kind!r}; expected one of {MATCHER_KINDS}"
        )
    impl.kind = kind  # type: ignore[attr-defined]
    return impl


def round_heuristic(
    problem: NetworkAlignmentProblem,
    g: np.ndarray,
    matcher: Matcher | str,
    tracker: BestTracker | None = None,
    *,
    source: str = "g",
    iteration: int = -1,
) -> tuple[float, float, float, MatchingResult]:
    """Round a heuristic vector to a matching and score it.

    Returns ``(objective, weight_part, overlap_part, matching)`` and, if a
    :class:`BestTracker` is given, offers the result to it (keeping "track
    of which g produced the largest objective", Table I).
    """
    if isinstance(matcher, str):
        matcher = make_matcher(matcher)
    matching = matcher(problem.ell, np.asarray(g, dtype=np.float64))
    x = matching.indicator(problem.n_edges_l)
    objective, weight_part, overlap_part = problem.objective_parts(x)
    if tracker is not None:
        tracker.offer(
            objective, weight_part, overlap_part, matching, g, source, iteration
        )
    bus = get_bus()
    if bus.active:
        kind = getattr(matcher, "kind", "custom")
        bus.emit(
            "rounding",
            source=source,
            iteration=iteration,
            matcher=kind,
            objective=objective,
            weight_part=weight_part,
            overlap_part=overlap_part,
            cardinality=matching.cardinality,
        )
        bus.metrics.counter("repro_roundings_total", matcher=kind).inc()
        bus.metrics.histogram("repro_rounding_objective").observe(objective)
    return objective, weight_part, overlap_part, matching
