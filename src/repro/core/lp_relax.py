"""The straightforward LP-relaxation baseline of §III.

Relax the integrality constraint of the MILP form (paper §II), solve the
linear program, and use the fractional scores as weights for one
max-weight bipartite matching.  Both iterative methods outperform this
procedure (and parallelize better than a sparse LP solver) — it exists
here as the baseline it is in the paper.

The LP has one variable per L edge plus one per unordered nonzero pair of
**S**; suitable for the small synthetic instances only.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as _sp
from scipy.optimize import linprog

from repro.core.problem import NetworkAlignmentProblem
from repro.core.result import AlignmentResult, IterationRecord
from repro.core.rounding import round_heuristic
from repro.errors import ReproError

__all__ = ["lp_relaxation_align", "lp_relaxation_scores"]


def lp_relaxation_scores(
    problem: NetworkAlignmentProblem,
) -> tuple[np.ndarray, float]:
    """Solve the LP relaxation.

    Returns ``(x_scores, lp_value)``: the fractional edge scores and the
    LP optimum, which is a valid upper bound on the integer optimum.
    """
    ell = problem.ell
    s_mat = problem.squares
    m = problem.n_edges_l
    rows_nz = s_mat.row_of_nonzero()
    cols_nz = s_mat.indices
    upper = cols_nz > rows_nz
    pair_e = rows_nz[upper]
    pair_f = cols_nz[upper]
    n_pairs = len(pair_e)
    n_vars = m + n_pairs

    # Objective: maximize α wᵀx + β Σ_p Y_p  (each unordered pair counts
    # its two mirror entries of eᵀYe, hence β not β/2).
    c = np.zeros(n_vars)
    c[:m] = -problem.alpha * problem.weights
    c[m:] = -problem.beta

    # Matching constraints Cx <= e.
    n_match_rows = ell.n_a + ell.n_b
    rows_m = np.concatenate([ell.edge_a, ell.n_a + ell.edge_b])
    cols_m = np.concatenate([np.arange(m), np.arange(m)])
    vals_m = np.ones(2 * m)

    # Linearization constraints Y_p - x_e <= 0 and Y_p - x_f <= 0.
    pr = np.arange(n_pairs)
    rows_p = np.concatenate(
        [n_match_rows + 2 * pr, n_match_rows + 2 * pr,
         n_match_rows + 2 * pr + 1, n_match_rows + 2 * pr + 1]
    )
    cols_p = np.concatenate([m + pr, pair_e, m + pr, pair_f])
    vals_p = np.concatenate(
        [np.ones(n_pairs), -np.ones(n_pairs),
         np.ones(n_pairs), -np.ones(n_pairs)]
    )

    a_ub = _sp.coo_matrix(
        (
            np.concatenate([vals_m, vals_p]),
            (
                np.concatenate([rows_m, rows_p]),
                np.concatenate([cols_m, cols_p]),
            ),
        ),
        shape=(n_match_rows + 2 * n_pairs, n_vars),
    ).tocsr()
    b_ub = np.concatenate([np.ones(n_match_rows), np.zeros(2 * n_pairs)])

    res = linprog(
        c, A_ub=a_ub, b_ub=b_ub, bounds=(0.0, 1.0), method="highs"
    )
    if not res.success:  # pragma: no cover - HiGHS is robust on these LPs
        raise ReproError(f"LP relaxation failed: {res.message}")
    return np.asarray(res.x[:m], dtype=np.float64), float(-res.fun)


def lp_relaxation_align(
    problem: NetworkAlignmentProblem, *, matcher: str = "exact"
) -> AlignmentResult:
    """LP relaxation + one rounding step (the §III baseline)."""
    scores, lp_value = lp_relaxation_scores(problem)
    obj, weight_part, overlap_part, matching = round_heuristic(
        problem, scores, matcher=matcher
    )
    record = IterationRecord(
        iteration=1,
        objective=obj,
        weight_part=weight_part,
        overlap_part=overlap_part,
        upper_bound=float("nan"),
        source="lp",
        gamma=float("nan"),
    )
    return AlignmentResult(
        matching=matching,
        objective=obj,
        weight_part=weight_part,
        overlap_part=overlap_part,
        best_upper_bound=lp_value,
        history=[record],
        method=f"lp-relax[{matcher}]",
        params={"alpha": problem.alpha, "beta": problem.beta,
                "matcher": matcher},
    )
