"""Vectorized Step-1 solver for Klau's method: one matching per row of S.

Each row of **S** induces a tiny max-weight matching among the L-edges in
that row.  Because the structure of **S** is fixed across iterations, rows
are *classified once*:

* ``singleton`` — one entry: take it if positive;
* ``star`` — all entries share an endpoint (pairwise conflicting): take
  the heaviest positive entry;
* ``free`` — all endpoints distinct (pairwise compatible): take every
  positive entry;
* ``general`` — anything else: exact DFS matching per row
  (:func:`repro.matching.exact_small.small_max_weight_matching`).

The first three classes cover the overwhelming majority of rows in the
paper's problem families and are solved for *all* rows simultaneously
with segmented reductions; only ``general`` rows fall back to the scalar
solver.  Results are bit-identical to solving every row with the exact
small matcher (tested).
"""

from __future__ import annotations

import numpy as np

from repro.matching.exact_small import small_max_weight_matching
from repro.sparse.bipartite import BipartiteGraph
from repro.sparse.csr import CSRMatrix

__all__ = ["RowMatcher"]

_BB_LIMIT = 18  # rows larger than this fall back to the generic solver


def _solve_conflicts(
    vals: list[float], masks: list[int]
) -> tuple[float, list[int]]:
    """Max-weight independent set in a conflict graph of matching edges.

    Exact branch-and-bound over edges sorted by decreasing weight with a
    suffix-sum bound; ``masks[i]`` is the precomputed bitmask of edges
    conflicting with edge ``i``.  For matching-conflict structures the
    search tree is tiny; this is the per-iteration hot loop of Klau
    Step 1.
    """
    order = sorted(
        (i for i, v in enumerate(vals) if v > 0.0),
        key=vals.__getitem__,
        reverse=True,
    )
    if not order:
        return 0.0, []
    k = len(order)
    w = [vals[i] for i in order]
    suffix = [0.0] * (k + 1)
    for i in range(k - 1, -1, -1):
        suffix[i] = suffix[i + 1] + w[i]
    # Mask of original indices still ahead of position idx (for the
    # forced-take rule below).
    rest = [0] * (k + 1)
    for i in range(k - 1, -1, -1):
        rest[i] = rest[i + 1] | (1 << order[i])

    # Greedy seed: sorted-greedy is a ½-approx and often optimal here;
    # starting with its value makes the suffix bound prune aggressively
    # (critical when many weights tie, e.g. the all-β/2 first iteration).
    best_val = 0.0
    best_set = 0
    blocked = 0
    for i in range(k):
        e = order[i]
        if not (blocked >> e) & 1:
            best_val += w[i]
            best_set |= 1 << e
            blocked |= masks[e]

    # Iterative DFS over the sorted order; blocked/chosen are bitmasks in
    # the *original* edge indexing so the precomputed conflict masks
    # apply directly.
    stack = [(0, 0, 0.0, 0)]
    push = stack.append
    pop = stack.pop
    while stack:
        idx, blocked, cur, chosen = pop()
        while idx < k:
            if cur + suffix[idx] <= best_val:
                break
            e = order[idx]
            if (blocked >> e) & 1:
                idx += 1
                continue
            if (masks[e] & rest[idx + 1] & ~blocked) == 0:
                # Conflict-free with everything still selectable: taking
                # it can never hurt — no skip branch needed.
                cur += w[idx]
                chosen |= 1 << e
                blocked |= masks[e]
                idx += 1
                continue
            # Branch: skip continues in this frame, take is pushed.
            push(
                (idx + 1, blocked | masks[e], cur + w[idx], chosen | (1 << e))
            )
            idx += 1
        if cur > best_val:
            best_val = cur
            best_set = chosen
    picked = []
    mm = best_set
    while mm:
        low = mm & -mm
        picked.append(low.bit_length() - 1)
        mm ^= low
    return best_val, picked


class RowMatcher:
    """Solves ``bipartite_match(e_iᵀ M)`` for every row i of S at once."""

    def __init__(self, s_mat: CSRMatrix, ell: BipartiteGraph) -> None:
        self._indptr = s_mat.indptr
        self._rows_nz = s_mat.row_of_nonzero()
        self._sub_a = ell.edge_a[s_mat.indices]
        self._sub_b = ell.edge_b[s_mat.indices]
        self._n_rows = s_mat.n_rows
        self._nnz = s_mat.nnz
        self._classify()

    # ------------------------------------------------------------------
    def _classify(self) -> None:
        """One-time row classification (structure is fixed, §IV-A)."""
        indptr = self._indptr
        sub_a, sub_b = self._sub_a, self._sub_b
        star_rows: list[int] = []
        free_rows: list[int] = []
        general_rows: list[int] = []
        lengths = np.diff(indptr)
        for e in np.flatnonzero(lengths > 0).tolist():
            lo, hi = int(indptr[e]), int(indptr[e + 1])
            if hi - lo == 1:
                star_rows.append(e)  # singleton == trivial star
                continue
            a = sub_a[lo:hi]
            b = sub_b[lo:hi]
            ua = len(np.unique(a))
            ub = len(np.unique(b))
            k = hi - lo
            if ua == 1 or ub == 1:
                star_rows.append(e)
            elif ua == k and ub == k:
                free_rows.append(e)
            else:
                general_rows.append(e)
        self.star_rows = np.array(star_rows, dtype=np.int64)
        self.free_rows = np.array(free_rows, dtype=np.int64)
        self.general_rows = np.array(general_rows, dtype=np.int64)

        def positions(rows: np.ndarray) -> np.ndarray:
            if len(rows) == 0:
                return np.empty(0, dtype=np.int64)
            counts = lengths[rows]
            out = np.empty(int(counts.sum()), dtype=np.int64)
            k = 0
            for r, c in zip(indptr[rows].tolist(), counts.tolist()):
                out[k : k + c] = np.arange(r, r + c)
                k += c
            return out

        self._star_pos = positions(self.star_rows)
        self._free_pos = positions(self.free_rows)
        # General rows: precompute pairwise conflict bitmasks once (the
        # structure never changes); the per-iteration solver is then a
        # tight pure-Python branch-and-bound over ≤ _DFS_LIMIT edges.
        self._general_rows_data: list[tuple[int, int, int, list[int]]] = []
        for e in self.general_rows.tolist():
            lo, hi = int(indptr[e]), int(indptr[e + 1])
            a = sub_a[lo:hi].tolist()
            b = sub_b[lo:hi].tolist()
            k = hi - lo
            masks = []
            for i in range(k):
                mask = 0
                for j in range(k):
                    if i != j and (a[i] == a[j] or b[i] == b[j]):
                        mask |= 1 << j
                masks.append(mask)
            self._general_rows_data.append((lo, hi, e, masks))

    # ------------------------------------------------------------------
    @property
    def n_solved_rows(self) -> int:
        """Number of non-empty rows (matchings solved per iteration)."""
        return len(self.star_rows) + len(self.free_rows) + len(
            self.general_rows
        )

    def category_counts(self) -> dict[str, int]:
        """Row counts per class (reported by ablation benches)."""
        return {
            "star": len(self.star_rows),
            "free": len(self.free_rows),
            "general": len(self.general_rows),
        }

    def solve(
        self, m_vals: np.ndarray, d_out: np.ndarray, sl_out: np.ndarray
    ) -> None:
        """Solve all row matchings for value array ``m_vals`` over S's nnz.

        Writes the matching values into ``d_out`` (length = rows of S) and
        the 0/1 selection indicators into ``sl_out`` (length = nnz of S).
        """
        indptr = self._indptr
        d_out[:] = 0.0
        sl_out[:] = 0.0
        if self._nnz == 0:
            return
        pos_vals = np.maximum(m_vals, 0.0)
        # Padded copy so segment ends equal to nnz are legal reduceat
        # indices; category rows are not contiguous, so every segment
        # needs an explicit [start, end) pair (interleaved indices).
        padded = np.append(pos_vals, 0.0)

        def segments(rows: np.ndarray, ufunc) -> np.ndarray:
            idx = np.empty(2 * len(rows), dtype=np.int64)
            idx[0::2] = indptr[rows]
            idx[1::2] = indptr[rows + 1]
            return ufunc.reduceat(padded, idx)[0::2]

        # --- free rows: every positive entry is selected ---------------
        if len(self.free_rows):
            d_out[self.free_rows] = segments(self.free_rows, np.add)
            fp = self._free_pos
            sl_out[fp] = m_vals[fp] > 0.0

        # --- star rows: heaviest positive entry ------------------------
        if len(self.star_rows):
            d_out[self.star_rows] = segments(self.star_rows, np.maximum)
            # First position attaining the max within each star row.
            sp = self._star_pos
            row_of = self._rows_nz[sp]
            # d_out[row] is that row's max; select first attainer if > 0.
            expanded_max = d_out[row_of]
            attains = (m_vals[sp] == expanded_max) & (expanded_max > 0.0)
            pos_or_big = np.where(attains, sp, self._nnz)
            # reduce per star row: map rows to compact ids
            # (star rows' positions are stored grouped row by row).
            lengths = (
                indptr[self.star_rows + 1] - indptr[self.star_rows]
            ).astype(np.int64)
            bounds = np.concatenate([[0], np.cumsum(lengths)])[:-1]
            first = np.minimum.reduceat(pos_or_big, bounds)
            chosen = first[first < self._nnz]
            sl_out[chosen] = 1.0

        # --- general rows: exact branch-and-bound ----------------------
        if self._general_rows_data:
            vals_list = m_vals.tolist()
            for lo, hi, e, masks in self._general_rows_data:
                if hi - lo > _BB_LIMIT:
                    value, chosen = small_max_weight_matching(
                        self._sub_a[lo:hi], self._sub_b[lo:hi], m_vals[lo:hi]
                    )
                    d_out[e] = value
                    sl_out[lo:hi] = chosen
                    continue
                value, picked = _solve_conflicts(vals_list[lo:hi], masks)
                d_out[e] = value
                for i in picked:
                    sl_out[lo + i] = 1.0
