"""The paper's core contribution: network alignment heuristics.

Public surface:

* :class:`~repro.core.problem.NetworkAlignmentProblem` — the (A, B, L, w,
  α, β) instance plus its squares matrix **S**.
* :func:`~repro.core.klau.klau_align` — Klau's matching-relaxation method
  (Listing 1).
* :func:`~repro.core.bp.belief_propagation_align` — the BP message-passing
  method (Listing 2), with batched rounding.
* :func:`~repro.core.lp_relax.lp_relaxation_align` — the straightforward
  LP-rounding baseline of §III.
* :func:`~repro.core.rounding.round_heuristic` and matcher factories — the
  rounding step whose exact→approximate substitution is the subject of
  the paper.
"""

from repro.core.bp import BPConfig, belief_propagation_align
from repro.core.isorank import IsoRankConfig, isorank_align
from repro.core.klau import KlauConfig, klau_align
from repro.core.lp_relax import lp_relaxation_align
from repro.core.objective import alignment_objective, overlap_count
from repro.core.problem import NetworkAlignmentProblem
from repro.core.result import AlignmentResult, IterationRecord
from repro.core.rounding import make_matcher, round_heuristic
from repro.core.steering import SteeringSession, forbid_pairs, pin_pairs

__all__ = [
    "AlignmentResult",
    "BPConfig",
    "IsoRankConfig",
    "IterationRecord",
    "KlauConfig",
    "NetworkAlignmentProblem",
    "SteeringSession",
    "alignment_objective",
    "belief_propagation_align",
    "forbid_pairs",
    "isorank_align",
    "klau_align",
    "lp_relaxation_align",
    "make_matcher",
    "overlap_count",
    "pin_pairs",
    "round_heuristic",
]
