"""The event bus: guarded emission, spans, and the process-default bus.

Design constraints (from the instrumented hot loops):

* **Off by default, overhead-free when off.**  A bus with no sinks has
  ``active == False``; every instrumented call site guards with
  ``if bus.active:`` so a disabled run pays one attribute read per
  emission point — no event objects, no validation, no timestamps.
* **Total order.**  Every event gets a strictly increasing sequence
  number; sorting by ``seq`` recovers emission order across modules
  (solver iterations interleaved with simulator replay events).
* **Spans.**  ``with bus.trace("bp.align", matcher="approx"):`` emits a
  ``span_start``/``span_end`` pair with the measured wall seconds, and
  nests (children record their parent span id).

>>> from repro.observe.sinks import MemorySink
>>> bus = EventBus()
>>> bus.active
False
>>> sink = bus.add_sink(MemorySink())
>>> with bus.trace("demo", flavor="doctest"):
...     bus.emit("barrier", step="x", n_threads=2, seconds=1e-6)
>>> [e.type for e in sink.events]
['span_start', 'barrier', 'span_end']
>>> bus.remove_sink(sink); bus.active
False
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.observe.events import Event, validate_event
from repro.observe.metrics import MetricsRegistry
from repro.observe.sinks import Sink

__all__ = ["EventBus", "get_bus", "set_bus", "capture"]


class EventBus:
    """Fans events out to attached sinks; owns a metrics registry."""

    def __init__(self) -> None:
        self._sinks: list[Sink] = []
        self._seq = itertools.count()
        self._span_ids = itertools.count(1)
        self._span_stack = threading.local()
        self._lock = threading.Lock()
        #: True iff at least one sink is attached.  Instrumented call
        #: sites read this before building event payloads.
        self.active = False
        #: Metrics published by instrumented code.  Gated by the same
        #: ``active`` flag at the call sites, so a disabled run records
        #: nothing.
        self.metrics = MetricsRegistry()

    # -- sink management ----------------------------------------------
    def add_sink(self, sink: Sink) -> Sink:
        """Attach ``sink`` and activate the bus.  Returns the sink."""
        with self._lock:
            self._sinks.append(sink)
            self.active = True
        return sink

    def remove_sink(self, sink: Sink) -> None:
        """Detach ``sink`` (ignoring sinks never attached)."""
        with self._lock:
            try:
                self._sinks.remove(sink)
            except ValueError:
                pass
            self.active = bool(self._sinks)

    def clear_sinks(self) -> None:
        """Detach every sink and deactivate the bus."""
        with self._lock:
            self._sinks.clear()
            self.active = False

    # -- emission ------------------------------------------------------
    def emit(self, type_name: str, **fields) -> None:
        """Validate and deliver one event to every sink.

        A no-op when no sink is attached — but call sites should still
        guard with ``if bus.active:`` to avoid building ``fields``.
        """
        if not self.active:
            return
        validate_event(type_name, fields)
        event = Event(type_name, next(self._seq), time.time(), fields)
        for sink in self._sinks:
            sink.write(event)

    # -- spans ---------------------------------------------------------
    def _stack(self) -> list[int]:
        stack = getattr(self._span_stack, "stack", None)
        if stack is None:
            stack = []
            self._span_stack.stack = stack
        return stack

    @contextmanager
    def trace(self, name: str, **labels) -> Iterator[int | None]:
        """Span context manager: ``span_start`` … ``span_end``.

        Yields the span id (or ``None`` when the bus is inactive, in
        which case nothing is emitted and nothing is timed).
        """
        if not self.active:
            yield None
            return
        span_id = next(self._span_ids)
        stack = self._stack()
        parent = stack[-1] if stack else 0
        stack.append(span_id)
        self.emit(
            "span_start", name=name, span=span_id, parent=parent, **labels
        )
        t0 = time.perf_counter()
        try:
            yield span_id
        finally:
            seconds = time.perf_counter() - t0
            stack.pop()
            self.emit(
                "span_end", name=name, span=span_id, parent=parent,
                seconds=seconds,
            )


#: The process-default bus every instrumented module publishes to.
_DEFAULT_BUS = EventBus()


def get_bus() -> EventBus:
    """The process-default :class:`EventBus`."""
    return _DEFAULT_BUS


def set_bus(bus: EventBus) -> EventBus:
    """Replace the process-default bus; returns the previous one.

    Instrumented modules call :func:`get_bus` at *call* time, so the
    swap takes effect immediately (tests use this for isolation).
    """
    global _DEFAULT_BUS
    previous = _DEFAULT_BUS
    _DEFAULT_BUS = bus
    return previous


@contextmanager
def capture(sink: Sink | None = None, bus: EventBus | None = None):
    """Attach ``sink`` (default: a fresh MemorySink) for the block.

    Yields the sink, detaching it afterwards::

        with capture() as sink:
            belief_propagation_align(problem)
        iteration_events = sink.of_type("iteration")
    """
    from repro.observe.sinks import MemorySink

    bus = bus if bus is not None else get_bus()
    sink = sink if sink is not None else MemorySink()
    bus.add_sink(sink)
    try:
        yield sink
    finally:
        bus.remove_sink(sink)
