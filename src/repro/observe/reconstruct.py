"""Rebuild solver history and simulator counters from an event stream.

The contract that makes benches migratable onto the event stream: a run
captured with any sink contains *all* the information the ad-hoc
``IterationRecord`` lists carried — :func:`history_from_events` proves
it by rebuilding the exact history (asserted in ``tests/test_observe.py``
against BP and Klau), and :func:`socket_counters_from_events` aggregates
the simulated machine's per-socket work, barrier waits, and remote
traffic the same way.

>>> from repro.observe.bus import EventBus
>>> from repro.observe.sinks import MemorySink
>>> bus = EventBus(); sink = bus.add_sink(MemorySink())
>>> bus.emit("iteration", method="bp", iteration=1, objective=2.0,
...          weight_part=1.0, overlap_part=1.0,
...          upper_bound=float("nan"), source="y", gamma=0.9)
>>> [r.objective for r in history_from_events(sink.events)]
[2.0]
"""

from __future__ import annotations

from typing import IO, Iterable, Sequence

from repro.observe.events import Event
from repro.observe.sinks import read_jsonl

__all__ = [
    "read_jsonl",
    "history_from_events",
    "history_from_jsonl",
    "socket_counters_from_events",
    "SocketCounters",
]


def history_from_events(
    events: Iterable[Event], method: str | None = None
):
    """Rebuild the per-iteration history from ``iteration`` events.

    Returns a list of :class:`repro.core.result.IterationRecord`, sorted
    by iteration (ties kept in emission order) — the same ordering
    :func:`repro.core.bp.belief_propagation_align` and
    :func:`repro.core.klau.klau_align` put in
    :attr:`repro.core.result.AlignmentResult.history`.

    ``method`` filters on the event's ``method`` field (prefix match, so
    ``"bp"`` matches ``"bp[batch=20,approx]"``); pass ``None`` when the
    stream holds a single run.
    """
    # Imported lazily: repro.core imports repro.observe at module load.
    from repro.core.result import IterationRecord

    records = []
    for event in sorted(events, key=lambda e: e.seq):
        if event.type != "iteration":
            continue
        f = event.fields
        if method is not None and not str(f["method"]).startswith(method):
            continue
        records.append(
            IterationRecord(
                iteration=int(f["iteration"]),
                objective=float(f["objective"]),
                weight_part=float(f["weight_part"]),
                overlap_part=float(f["overlap_part"]),
                upper_bound=float(f["upper_bound"]),
                source=str(f["source"]),
                gamma=float(f["gamma"]),
            )
        )
    records.sort(key=lambda r: r.iteration)
    return records


def history_from_jsonl(path_or_file: str | IO[str], method: str | None = None):
    """:func:`history_from_events` over a JSONL capture file."""
    return history_from_events(read_jsonl(path_or_file), method=method)


class SocketCounters:
    """Aggregated simulated-machine behavior for one replay stream.

    Attributes
    ----------
    work_seconds:
        socket id → simulated busy seconds across all replayed loops.
    barrier_count, barrier_seconds:
        Number of simulated barriers and their total wait seconds.
    remote_bytes, local_bytes:
        Estimated NUMA-remote vs local traffic (bytes) across loops.
    steps:
        step name → total simulated seconds (Fig. 6/7 shape).
    """

    def __init__(self) -> None:
        self.work_seconds: dict[int, float] = {}
        self.barrier_count = 0
        self.barrier_seconds = 0.0
        self.remote_bytes = 0.0
        self.local_bytes = 0.0
        self.steps: dict[str, float] = {}

    def __repr__(self) -> str:
        return (
            f"SocketCounters(sockets={sorted(self.work_seconds)}, "
            f"barriers={self.barrier_count}, "
            f"remote_bytes={self.remote_bytes:.0f})"
        )


def socket_counters_from_events(events: Iterable[Event]) -> SocketCounters:
    """Aggregate ``trace_replay``/``barrier`` events into counters.

    Only replay events of kind ``"loop"`` carry per-socket breakdowns
    (``socket_seconds`` maps socket id → busy seconds); iteration-level
    replay events contribute to the per-step totals.
    """
    out = SocketCounters()
    for event in events:
        if event.type == "barrier":
            out.barrier_count += 1
            out.barrier_seconds += float(event.fields["seconds"])
        elif event.type == "trace_replay":
            f = event.fields
            if f.get("kind") == "loop":
                for sock, sec in (f.get("socket_seconds") or {}).items():
                    key = int(sock)
                    out.work_seconds[key] = (
                        out.work_seconds.get(key, 0.0) + float(sec)
                    )
                out.remote_bytes += float(f.get("remote_bytes", 0.0))
                out.local_bytes += float(f.get("local_bytes", 0.0))
                out.steps[f["step"]] = (
                    out.steps.get(f["step"], 0.0) + float(f["seconds"])
                )
    return out
