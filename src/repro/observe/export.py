"""Metrics exporters: ship a registry snapshot out of the process.

The :class:`~repro.observe.metrics.MetricsRegistry` snapshot rows are
plain JSON — good for files, useless for a scrape pipeline.  This
module renders the same rows in the two wire formats the monitoring
world actually speaks, with zero dependencies:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# TYPE`` lines, ``name{label="value"} 1.5`` samples, histogram
  ``_bucket``/``_sum``/``_count`` series with *cumulative* ``le``
  buckets, full label escaping);
* :func:`otlp_json` — an OTLP-JSON-shaped
  ``ExportMetricsServiceRequest`` document
  (``resourceMetrics → scopeMetrics → metrics`` with ``sum`` /
  ``gauge`` / ``histogram`` data points).

Both are usable two ways:

* **pull** — call the function at scrape time (``GET /v1/metrics`` in
  :mod:`repro.serve` does exactly this);
* **push** — attach :class:`PrometheusExporter` / :class:`OTLPExporter`
  as ordinary event-bus sinks; they re-render the registry at most once
  per ``interval_s`` as events flow past, and always once at
  ``close()``.  The Prometheus sink *rewrites* its target (node-exporter
  textfile-collector semantics); the OTLP sink *appends* one JSON line
  per flush (each line one export request, mimicking repeated pushes).

>>> reg = MetricsRegistry()
>>> reg.counter("demo_total", kind="doc").inc(3)
>>> print(prometheus_text(reg))
# TYPE demo_total counter
demo_total{kind="doc"} 3
<BLANKLINE>
>>> doc = otlp_json(reg)
>>> doc["resourceMetrics"][0]["scopeMetrics"][0]["metrics"][0]["name"]
'demo_total'
"""

from __future__ import annotations

import json
import math
import os
import time
from typing import IO, Any, Mapping

from repro.errors import ObservabilityError
from repro.observe.metrics import MetricsRegistry

__all__ = [
    "OTLPExporter",
    "PrometheusExporter",
    "histogram_quantile",
    "merged_rows",
    "otlp_json",
    "prometheus_text",
    "text_summary",
]


def merged_rows(*sources: Any) -> list[dict[str, Any]]:
    """Concatenate snapshot rows from registries and/or row lists.

    Args:
        *sources: Each item is either a
            :class:`~repro.observe.metrics.MetricsRegistry` (its
            ``snapshot()`` is taken) or an iterable of snapshot rows.

    Returns:
        One combined row list, sorted by ``(metric, labels)`` so the
        rendered output is deterministic regardless of source order.
    """
    rows: list[dict[str, Any]] = []
    for source in sources:
        if isinstance(source, MetricsRegistry):
            rows.extend(source.snapshot())
        else:
            rows.extend(source)
    rows.sort(key=lambda r: (r["metric"], sorted(r["labels"].items())))
    return rows


def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value: float | None) -> str:
    """Format one sample value the way Prometheus parsers expect."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "NaN"
    v = float(value)
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def _label_str(labels: Mapping[str, str],
               extra: tuple[tuple[str, str], ...] = ()) -> str:
    """Render a ``{name="value",...}`` label block (empty string if none)."""
    items = [(k, str(v)) for k, v in sorted(labels.items())] + list(extra)
    if not items:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in items)
    return "{" + inner + "}"


def prometheus_text(source: Any, *extra_sources: Any) -> str:
    """Render snapshot rows in the Prometheus text exposition format.

    Counters and gauges become one sample per label set; histograms
    become the conventional ``_bucket`` (cumulative counts, ``le``
    upper bounds ending at ``+Inf``), ``_sum`` and ``_count`` series.
    Samples of one metric are grouped under a single ``# TYPE`` line,
    as the format requires.

    Args:
        source: A :class:`~repro.observe.metrics.MetricsRegistry` or an
            iterable of snapshot rows.
        *extra_sources: Additional registries/row lists merged in (the
            serve layer merges its own HTTP registry with the process
            bus registry).

    Returns:
        The exposition text; empty registries render to ``""``.

    Raises:
        ObservabilityError: If two sources disagree on a metric's kind.
    """
    rows = merged_rows(source, *extra_sources)
    by_name: dict[str, list[dict[str, Any]]] = {}
    kinds: dict[str, str] = {}
    for row in rows:
        name = row["metric"]
        kind = row["metric_kind"]
        if kinds.setdefault(name, kind) != kind:
            raise ObservabilityError(
                f"metric {name!r} exported as both {kinds[name]} and {kind}"
            )
        by_name.setdefault(name, []).append(row)
    out: list[str] = []
    for name in sorted(by_name):
        kind = kinds[name]
        out.append(f"# TYPE {name} {kind}")
        for row in by_name[name]:
            labels = row["labels"]
            if kind != "histogram":
                out.append(
                    f"{name}{_label_str(labels)} "
                    f"{_format_value(row['value'])}"
                )
                continue
            cumulative = 0
            bounds = [_format_value(b) for b in row["buckets"]] + ["+Inf"]
            for bound, count in zip(bounds, row["bucket_counts"]):
                cumulative += count
                out.append(
                    f"{name}_bucket"
                    f"{_label_str(labels, (('le', bound),))} {cumulative}"
                )
            out.append(
                f"{name}_sum{_label_str(labels)} "
                f"{_format_value(row['value'])}"
            )
            out.append(
                f"{name}_count{_label_str(labels)} {row['count']}"
            )
    return "\n".join(out) + "\n" if out else ""


def histogram_quantile(row: Mapping[str, Any], q: float) -> float | None:
    """Estimate a quantile from one histogram snapshot row.

    The estimate interpolates linearly inside the bucket holding the
    target rank — the same model ``histogram_quantile()`` uses in
    PromQL — with two refinements the snapshot rows make possible: the
    first bucket's lower edge and the overflow bucket's upper edge are
    taken from the recorded ``min``/``max`` observations, so estimates
    never extrapolate outside the observed range.

    Args:
        row: A histogram snapshot row (``metric_kind == "histogram"``)
            as produced by
            :meth:`~repro.observe.metrics.MetricsRegistry.snapshot`.
        q: The quantile in ``[0, 1]`` (``0.5`` for the median).

    Returns:
        The estimated value, or ``None`` for an empty histogram.

    Raises:
        ObservabilityError: If ``q`` is outside ``[0, 1]`` or ``row``
            is not a histogram row.
    """
    if row.get("metric_kind") != "histogram":
        raise ObservabilityError(
            f"histogram_quantile needs a histogram row, got "
            f"{row.get('metric_kind')!r}"
        )
    if not 0.0 <= q <= 1.0:
        raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
    total = row["count"]
    if not total:
        return None
    lo_edge = row["min"] if row["min"] is not None else 0.0
    hi_edge = row["max"] if row["max"] is not None else math.inf
    bounds = list(row["buckets"])
    target = q * total
    cumulative = 0.0
    for i, count in enumerate(row["bucket_counts"]):
        if not count:
            cumulative += count
            continue
        lo = bounds[i - 1] if i > 0 else lo_edge
        hi = bounds[i] if i < len(bounds) else hi_edge
        lo = max(min(lo, hi_edge), lo_edge)
        hi = max(min(hi, hi_edge), lo_edge)
        if cumulative + count >= target:
            frac = (target - cumulative) / count
            return lo + (hi - lo) * max(0.0, min(1.0, frac))
        cumulative += count
    return hi_edge if math.isfinite(hi_edge) else bounds[-1]


def text_summary(source: Any, *extra_sources: Any) -> str:
    """Render snapshot rows as a human-readable terminal summary.

    The operator-facing sibling of :func:`prometheus_text` (the
    ``--metrics-format text`` CLI path): counters and gauges print one
    aligned ``name{labels}  value`` line each, and histograms collapse
    into per-label-set quantile summaries — ``count``, ``mean``, and
    interpolated ``p50``/``p95``/``p99`` (:func:`histogram_quantile`) —
    instead of raw bucket series, so per-route latency tails are
    readable at a glance.

    Args:
        source: A :class:`~repro.observe.metrics.MetricsRegistry` or an
            iterable of snapshot rows.
        *extra_sources: Additional registries/row lists merged in.

    Returns:
        The summary text; empty registries render to ``""``.
    """
    rows = merged_rows(source, *extra_sources)
    lines: list[str] = []
    for row in rows:
        name = row["metric"]
        label_block = _label_str(row["labels"])
        if row["metric_kind"] != "histogram":
            lines.append(
                f"{name}{label_block}  {_format_value(row['value'])}"
            )
            continue
        count = row["count"]
        if count:
            mean = row["value"] / count
            quants = "  ".join(
                f"p{int(q * 100)}={_format_value(histogram_quantile(row, q))}"
                for q in (0.5, 0.95, 0.99)
            )
            detail = f"count={count}  mean={_format_value(mean)}  {quants}"
        else:
            detail = "count=0"
        lines.append(f"{name}{label_block}  {detail}")
    return "\n".join(lines) + "\n" if lines else ""


def _otlp_attributes(labels: Mapping[str, str]) -> list[dict[str, Any]]:
    """Label set → OTLP attribute list (string values)."""
    return [
        {"key": k, "value": {"stringValue": str(v)}}
        for k, v in sorted(labels.items())
    ]


def otlp_json(source: Any, *extra_sources: Any,
              service_name: str = "repro",
              time_unix_nano: int | None = None) -> dict[str, Any]:
    """Render snapshot rows as an OTLP-JSON-shaped metrics document.

    The shape follows the OTLP/HTTP JSON encoding of
    ``ExportMetricsServiceRequest``: one resource (carrying
    ``service.name``), one scope (``repro.observe``), and one metric
    entry per name.  Counters map to monotonic cumulative ``sum``
    points, gauges to ``gauge`` points, histograms to ``histogram``
    points with ``explicitBounds``/``bucketCounts`` (per-bucket, not
    cumulative — OTLP semantics, unlike Prometheus).

    Args:
        source: A :class:`~repro.observe.metrics.MetricsRegistry` or an
            iterable of snapshot rows.
        *extra_sources: Additional registries/row lists merged in.
        service_name: The ``service.name`` resource attribute.
        time_unix_nano: Point timestamp; defaults to the current time.

    Returns:
        The JSON-ready document (``{"resourceMetrics": [...]}``).
    """
    rows = merged_rows(source, *extra_sources)
    now = (time.time_ns() if time_unix_nano is None else time_unix_nano)
    metrics: dict[str, dict[str, Any]] = {}
    for row in rows:
        name = row["metric"]
        kind = row["metric_kind"]
        attrs = _otlp_attributes(row["labels"])
        if kind == "histogram":
            point = {
                "attributes": attrs,
                "timeUnixNano": str(now),
                "count": str(row["count"]),
                "sum": row["value"],
                "bucketCounts": [str(c) for c in row["bucket_counts"]],
                "explicitBounds": list(row["buckets"]),
            }
            if row["min"] is not None:
                point["min"] = row["min"]
            if row["max"] is not None:
                point["max"] = row["max"]
            entry = metrics.setdefault(name, {
                "name": name,
                "histogram": {"aggregationTemporality": 2,
                              "dataPoints": []},
            })
            entry["histogram"]["dataPoints"].append(point)
            continue
        point = {
            "attributes": attrs,
            "timeUnixNano": str(now),
            "asDouble": row["value"],
        }
        if kind == "counter":
            entry = metrics.setdefault(name, {
                "name": name,
                "sum": {"aggregationTemporality": 2, "isMonotonic": True,
                        "dataPoints": []},
            })
            entry["sum"]["dataPoints"].append(point)
        else:
            entry = metrics.setdefault(name, {
                "name": name, "gauge": {"dataPoints": []},
            })
            entry["gauge"]["dataPoints"].append(point)
    return {
        "resourceMetrics": [{
            "resource": {"attributes": [{
                "key": "service.name",
                "value": {"stringValue": service_name},
            }]},
            "scopeMetrics": [{
                "scope": {"name": "repro.observe"},
                "metrics": [metrics[name] for name in sorted(metrics)],
            }],
        }],
    }


class _ExporterSink:
    """Shared machinery of the push-mode exporter sinks.

    Subclasses render the registry with :meth:`_render` and deliver the
    text with :meth:`_deliver`.  As an event-bus sink, ``write`` is
    called on solver hot paths, so the periodic check is one monotonic
    clock read; rendering happens at most once per ``interval_s``.
    """

    def __init__(self, *, path: str | None = None,
                 stream: IO[str] | None = None,
                 registry: MetricsRegistry | None = None,
                 interval_s: float = 5.0) -> None:
        if (path is None) == (stream is None):
            raise ObservabilityError(
                f"{type(self).__name__} needs exactly one of path= or "
                f"stream="
            )
        if interval_s < 0:
            raise ObservabilityError("interval_s must be >= 0")
        self._path = path
        self._stream = stream
        self._registry = registry
        self._interval = float(interval_s)
        self._last_flush = -math.inf
        self._closed = False

    def _rows_source(self) -> MetricsRegistry:
        if self._registry is not None:
            return self._registry
        from repro.observe.bus import get_bus

        return get_bus().metrics

    def _render(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def _deliver(self, text: str) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def flush(self) -> None:
        """Render the registry now and deliver it to the target."""
        self._last_flush = time.monotonic()
        self._deliver(self._render())

    def write(self, event: Any) -> None:
        """Flush if ``interval_s`` has elapsed since the last flush."""
        if time.monotonic() - self._last_flush >= self._interval:
            self.flush()

    def close(self) -> None:
        """Flush one final snapshot and release the target."""
        if self._closed:
            return
        self._closed = True
        self.flush()


class PrometheusExporter(_ExporterSink):
    """Push sink rendering :func:`prometheus_text` to a file or stream.

    Each flush *replaces* the previous content — with ``path=`` via an
    atomic write-then-rename (textfile-collector convention), with a
    seekable ``stream=`` via truncate-and-rewrite.

    >>> import io
    >>> reg = MetricsRegistry(); reg.gauge("up").set(1)
    >>> sink = PrometheusExporter(stream=io.StringIO(), registry=reg,
    ...                           interval_s=0.0)
    >>> sink.close(); print(sink._stream.getvalue())
    # TYPE up gauge
    up 1
    <BLANKLINE>
    """

    def _render(self) -> str:
        return prometheus_text(self._rows_source())

    def _deliver(self, text: str) -> None:
        if self._path is not None:
            tmp = f"{self._path}.tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(text)
            os.replace(tmp, self._path)
            return
        assert self._stream is not None
        if self._stream.seekable():
            self._stream.seek(0)
            self._stream.truncate()
        self._stream.write(text)
        self._stream.flush()


class OTLPExporter(_ExporterSink):
    """Push sink appending one OTLP-JSON export line per flush.

    Each flush appends one compact :func:`otlp_json` document as a
    single line — the file becomes a JSONL log of export requests, the
    closest file-shaped analogue of repeated OTLP/HTTP pushes.

    >>> import io, json
    >>> reg = MetricsRegistry(); reg.counter("n_total").inc()
    >>> sink = OTLPExporter(stream=io.StringIO(), registry=reg,
    ...                     interval_s=0.0)
    >>> sink.close()
    >>> "resourceMetrics" in json.loads(sink._stream.getvalue())
    True
    """

    def __init__(self, *, path: str | None = None,
                 stream: IO[str] | None = None,
                 registry: MetricsRegistry | None = None,
                 interval_s: float = 5.0,
                 service_name: str = "repro") -> None:
        super().__init__(path=path, stream=stream, registry=registry,
                         interval_s=interval_s)
        self._service_name = service_name
        self._fh: IO[str] | None = None

    def _render(self) -> str:
        doc = otlp_json(self._rows_source(),
                        service_name=self._service_name)
        return json.dumps(doc, sort_keys=True)

    def _deliver(self, text: str) -> None:
        if self._path is not None:
            if self._fh is None:
                self._fh = open(self._path, "a", encoding="utf-8")
            self._fh.write(text + "\n")
            self._fh.flush()
            return
        assert self._stream is not None
        self._stream.write(text + "\n")
        self._stream.flush()

    def close(self) -> None:
        """Flush one final export line and close the owned file."""
        super().close()
        if self._fh is not None:
            self._fh.close()
            self._fh = None
