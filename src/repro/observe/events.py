"""The event schema: every event type the instrumentation can emit.

An :class:`Event` is a flat record — a type name, a monotonically
increasing sequence number (total order within one process), a wall-clock
timestamp, and a dict of typed fields.  The schema is *closed*: only the
types registered in :data:`EVENT_TYPES` may be emitted, and each type
declares the fields that must be present.  ``docs/observability.md``
documents the same schema for humans; ``tests/test_docs_consistency.py``
asserts the two never drift apart.

Event types
-----------

``span_start`` / ``span_end``
    Span-style tracing (:meth:`repro.observe.bus.EventBus.trace`): marks
    the begin/end of a named region (an alignment run, a simulation).
``iteration``
    One solver iteration — the event-stream twin of
    :class:`repro.core.result.IterationRecord`; emitted by
    ``core/bp.py``, ``core/klau.py`` and ``core/isorank.py``.
``rounding``
    One rounding call (heuristic vector → matching → objective);
    emitted by ``core/rounding.py``.
``matching``
    One bipartite-matching invocation; emitted by every matching
    substrate (``exact``, ``locally_dominant``, ``suitor``, ``greedy``,
    ``auction``).
``trace_replay``
    Machine-simulator activity: a replayed parallel loop, a whole
    simulated iteration, or a captured iteration trace; emitted by
    ``machine/runtime.py`` and ``machine/trace.py``.
``barrier``
    One simulated OpenMP barrier (fork/join + log-tree wait); emitted by
    ``machine/runtime.py``.
``metric``
    A metrics-registry snapshot row, published via
    :meth:`repro.observe.metrics.MetricsRegistry.publish`.
``multilevel_level``
    One V-cycle level transition (coarsen / solve / refine) with the
    level's problem sizes; emitted by ``multilevel/vcycle.py``.
``fault_injected``
    One fired chaos fault from an armed
    :class:`repro.resilience.FaultPlan`; emitted at every consultation
    point (``resilience/faults.py``).
``task_retry``
    One supervised retry of a failed or timed-out task, with the
    backoff it slept; emitted by ``resilience/supervise.py``.
``backend_degraded``
    One taken step down a degradation ladder (execution backend or
    matching kernel); emitted by ``resilience/degrade.py`` and the
    kernel fallback in ``matching/backends.py``.
``checkpoint``
    One saved :class:`repro.resilience.SolverCheckpoint`; emitted by
    ``resilience/checkpoint.py`` on behalf of BP and Klau.
``delta_applied``
    One applied :class:`repro.incremental.ProblemDelta` edit script,
    with the edit volume and how much cached structure was recomputed;
    emitted by ``incremental/delta.py``.
``active_set_size``
    One incremental-BP iteration's active-set restriction (how many of
    the ``m`` L edges were updated, and whether the iteration fell back
    to a full sweep); emitted by the warm path in ``core/bp.py``.

>>> validate_event("iteration", {
...     "method": "bp", "iteration": 1, "objective": 2.0,
...     "weight_part": 1.0, "overlap_part": 1.0,
...     "upper_bound": float("nan"), "source": "y", "gamma": 0.99,
... })
>>> try:
...     validate_event("no_such_event", {})
... except Exception as exc:
...     print(type(exc).__name__)
ObservabilityError
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ObservabilityError

__all__ = ["Event", "EVENT_TYPES", "validate_event"]


#: The closed event schema: event type → fields required at emission.
#: Emitters may attach extra (optional) fields; required ones are checked.
EVENT_TYPES: dict[str, tuple[str, ...]] = {
    "span_start": ("name", "span"),
    "span_end": ("name", "span", "seconds"),
    "iteration": (
        "method", "iteration", "objective", "weight_part",
        "overlap_part", "upper_bound", "source", "gamma",
    ),
    "rounding": (
        "source", "iteration", "matcher", "objective",
        "weight_part", "overlap_part", "cardinality",
    ),
    "matching": ("algorithm", "cardinality", "weight", "rounds"),
    "trace_replay": ("kind", "step", "seconds"),
    "barrier": ("step", "n_threads", "seconds"),
    "metric": ("metric", "metric_kind", "labels", "value"),
    "multilevel_level": ("level", "action", "n_a", "n_b", "n_edges_l"),
    "fault_injected": ("site", "kind", "task_index", "worker_id"),
    "task_retry": (
        "site", "task_index", "attempt", "backend", "reason", "backoff_s",
    ),
    "backend_degraded": ("site", "from_backend", "to_backend", "reason"),
    "checkpoint": ("method", "iteration", "key"),
    "delta_applied": (
        "structural", "l_added", "l_dropped", "l_reweighted",
        "graph_edited", "touched_edges", "rows_recomputed",
        "n_edges_old", "n_edges_new",
    ),
    "active_set_size": ("iteration", "active", "total", "full_sweep"),
}


@dataclass(frozen=True)
class Event:
    """One emitted observation.

    ``seq`` is assigned by the emitting bus and is strictly increasing,
    so sorting by ``seq`` recovers emission order even when wall-clock
    timestamps collide.
    """

    type: str
    seq: int
    time: float
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Flatten to one JSON-serializable dict (JSONL row shape).

        >>> Event("barrier", 3, 0.0,
        ...       {"step": "othermax", "n_threads": 4, "seconds": 1e-6}
        ...       ).to_dict()["step"]
        'othermax'
        """
        row: dict[str, Any] = {
            "type": self.type, "seq": self.seq, "time": self.time,
        }
        row.update(self.fields)
        return row

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "Event":
        """Inverse of :meth:`to_dict` (used by the JSONL reader)."""
        fields = {
            k: v for k, v in row.items() if k not in ("type", "seq", "time")
        }
        return cls(
            type=str(row["type"]), seq=int(row["seq"]),
            time=float(row["time"]), fields=fields,
        )


def validate_event(type_name: str, fields: Mapping[str, Any]) -> None:
    """Raise :class:`~repro.errors.ObservabilityError` on a schema breach."""
    required = EVENT_TYPES.get(type_name)
    if required is None:
        raise ObservabilityError(
            f"unknown event type {type_name!r}; "
            f"known types: {sorted(EVENT_TYPES)}"
        )
    missing = [f for f in required if f not in fields]
    if missing:
        raise ObservabilityError(
            f"event {type_name!r} is missing required fields {missing}"
        )
