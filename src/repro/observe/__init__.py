"""Observability: tracing, metrics, and profiling hooks (zero-dependency).

One coherent, timestamp-ordered event stream covers algorithm progress
(solver iterations, rounding calls, matching invocations) *and*
simulated-machine behavior (replayed loops with per-socket work, barrier
waits, remote-traffic estimates).  The pieces:

* :mod:`~repro.observe.events` — the documented, closed event schema;
* :mod:`~repro.observe.bus` — the :class:`EventBus` (span-style
  ``trace`` context managers + typed ``emit``), the process-default bus
  (:func:`get_bus`), and the :func:`capture` helper;
* :mod:`~repro.observe.metrics` — labeled counters/gauges/histograms
  (:class:`MetricsRegistry`, one per bus at ``bus.metrics``);
* :mod:`~repro.observe.sinks` — :class:`MemorySink` (tests/steering),
  :class:`JSONLSink` (durable capture), :class:`ConsoleSink` (live
  human-readable reporter), :class:`NullSink`, and the sink registry
  (:func:`make_sink` over :data:`SINK_NAMES`);
* :mod:`~repro.observe.export` — metrics exporters:
  :func:`prometheus_text` / :func:`otlp_json` pull snapshots and the
  :class:`PrometheusExporter` / :class:`OTLPExporter` push sinks;
* :mod:`~repro.observe.dashboards` — dashboard panel JSON generated
  from the event schema and serve metric names (the committed
  ``dashboards/`` files);
* :mod:`~repro.observe.reconstruct` — rebuild
  :class:`~repro.core.result.IterationRecord` history and per-socket
  simulator counters from a captured stream.

Instrumentation is **off by default**: the default bus has no sinks and
every emission point in the solvers, matchers and the machine simulator
is guarded by ``bus.active`` — a disabled run pays one attribute read
per site.  Enable by attaching a sink (``get_bus().add_sink(...)``,
``with capture() as sink: ...``) or via the CLI flags ``--trace-out`` /
``--metrics-out`` / ``--live``.  See ``docs/observability.md`` for the
full schema and worked examples.
"""

from repro.observe.bus import EventBus, capture, get_bus, set_bus
from repro.observe.dashboards import (
    DASHBOARD_NAMES,
    render_dashboards,
    write_dashboards,
)
from repro.observe.events import EVENT_TYPES, Event, validate_event
from repro.observe.export import (
    OTLPExporter,
    PrometheusExporter,
    histogram_quantile,
    merged_rows,
    otlp_json,
    prometheus_text,
    text_summary,
)
from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observe.reconstruct import (
    SocketCounters,
    history_from_events,
    history_from_jsonl,
    read_jsonl,
    socket_counters_from_events,
)
from repro.observe.sinks import (
    SINK_NAMES,
    ConsoleSink,
    JSONLSink,
    MemorySink,
    NullSink,
    Sink,
    make_sink,
)

__all__ = [
    "DASHBOARD_NAMES",
    "EVENT_TYPES",
    "SINK_NAMES",
    "ConsoleSink",
    "Counter",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "JSONLSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "OTLPExporter",
    "PrometheusExporter",
    "Sink",
    "SocketCounters",
    "capture",
    "get_bus",
    "histogram_quantile",
    "history_from_events",
    "history_from_jsonl",
    "make_sink",
    "merged_rows",
    "otlp_json",
    "prometheus_text",
    "read_jsonl",
    "render_dashboards",
    "set_bus",
    "socket_counters_from_events",
    "text_summary",
    "validate_event",
    "write_dashboards",
]
