"""Event sinks: where emitted events go.

A sink is anything with ``write(event)`` and ``close()``.  Three
implementations cover the paper-reproduction workflows:

* :class:`MemorySink` — in-process list, for tests and steering;
* :class:`JSONLSink` — one JSON object per line, the durable format the
  reconstruction helpers (:mod:`repro.observe.reconstruct`) read back;
* :class:`ConsoleSink` — a human-readable live reporter for watching a
  run in flight;
* :class:`NullSink` — accepts and drops everything (exercises the full
  emission path without storage; used by the overhead tests).

The metrics-exporter sinks (:class:`~repro.observe.export.PrometheusExporter`,
:class:`~repro.observe.export.OTLPExporter`) live in
:mod:`repro.observe.export` and follow the same contract.

Sinks never raise out of ``write`` design-wise — they are called from
solver hot loops; a failing sink should be detached, not crash a run.

Construction is uniform: every sink takes keyword options only, and
:func:`make_sink` builds any of them by registry name::

    make_sink("jsonl", path="run.jsonl")
    make_sink("console", verbose=True)
    make_sink("prometheus", path="metrics.prom", interval_s=10.0)

The pre-registry positional forms (``JSONLSink(fileobj)``,
``ConsoleSink(stream)``) keep working but emit a ``DeprecationWarning``;
``docs/observability.md`` documents the migration.
"""

from __future__ import annotations

import importlib
import io
import json
import math
import sys
import threading
import time
import warnings
from typing import IO, Iterable, Protocol

from repro.errors import ObservabilityError
from repro.observe.events import Event

__all__ = [
    "Sink", "MemorySink", "JSONLSink", "ConsoleSink", "NullSink",
    "SINK_NAMES", "make_sink",
    "event_to_json", "event_from_json",
]


class Sink(Protocol):
    """The sink contract used by :class:`repro.observe.bus.EventBus`."""

    def write(self, event: Event) -> None: ...

    def close(self) -> None: ...


def _sanitize(value):
    """Make a field JSON-strict: non-finite floats become ``None``."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return value


def event_to_json(event: Event) -> str:
    """Serialize one event to a strict-JSON line.

    Non-finite floats (BP's ``NaN`` upper bound, IsoRank's ``NaN`` gamma)
    are written as ``null`` so any JSON reader can consume the stream.

    >>> e = Event("barrier", 1, 0.0,
    ...           {"step": "x", "n_threads": 2, "seconds": float("nan")})
    >>> json.loads(event_to_json(e))["seconds"] is None
    True
    """
    return json.dumps(
        _sanitize(event.to_dict()), allow_nan=False, sort_keys=False
    )


def event_from_json(line: str) -> Event:
    """Parse one JSONL line back into an :class:`Event`.

    ``null`` field values are mapped back to ``NaN`` — the only Python
    floats the writer nulls out (sinks never emit ``None`` fields
    themselves), so the round-trip is lossless for event streams this
    package produces.
    """
    row = json.loads(line)
    for key, value in row.items():
        if value is None:
            row[key] = float("nan")
    return Event.from_dict(row)


class MemorySink:
    """Collects events in a list (thread-safe append)."""

    def __init__(self) -> None:
        self.events: list[Event] = []
        self._lock = threading.Lock()

    def write(self, event: Event) -> None:
        with self._lock:
            self.events.append(event)

    def close(self) -> None:  # nothing to release
        pass

    def of_type(self, *types: str) -> list[Event]:
        """Events whose type is one of ``types``, in emission order."""
        wanted = set(types)
        return [e for e in self.events if e.type in wanted]

    def clear(self) -> None:
        """Drop all collected events."""
        with self._lock:
            self.events.clear()


class JSONLSink:
    """Appends one JSON line per event to a file (or file-like object).

    Args:
        path: File path to create and own (closed by ``close()``).
        stream: An already-open text stream to write to instead; the
            caller keeps ownership.  Exactly one of ``path``/``stream``
            must be given.  Passing a file object as ``path`` (the
            pre-registry ``JSONLSink(path_or_file)`` form) still works
            but emits a ``DeprecationWarning``.
    """

    def __init__(self, path: str | IO[str] | None = None, *,
                 stream: IO[str] | None = None) -> None:
        if path is not None and not isinstance(path, (str, bytes)):
            warnings.warn(
                "passing a file object to JSONLSink(path_or_file) is "
                "deprecated; use JSONLSink(stream=...)",
                DeprecationWarning, stacklevel=2,
            )
            path, stream = None, path
        if (path is None) == (stream is None):
            raise ObservabilityError(
                "JSONLSink needs exactly one of path= or stream="
            )
        if path is not None:
            self._fh: IO[str] = open(path, "w", encoding="utf-8")
            self._owns = True
        else:
            assert stream is not None
            self._fh = stream
            self._owns = False
        self._lock = threading.Lock()

    def write(self, event: Event) -> None:
        line = event_to_json(event)
        with self._lock:
            self._fh.write(line)
            self._fh.write("\n")

    def close(self) -> None:
        with self._lock:
            self._fh.flush()
            if self._owns:
                self._fh.close()

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(path_or_file: str | IO[str]) -> list[Event]:
    """Read a JSONL event stream back (inverse of :class:`JSONLSink`)."""
    if isinstance(path_or_file, (str, bytes)):
        with open(path_or_file, "r", encoding="utf-8") as fh:
            return [event_from_json(ln) for ln in fh if ln.strip()]
    return [event_from_json(ln) for ln in path_or_file if ln.strip()]


class ConsoleSink:
    """Human-readable live reporter.

    Formats load-bearing events as one line each; ``iteration`` events
    can be rate-limited (``min_interval`` seconds between printed lines)
    so long runs stay readable.  ``barrier`` and per-loop replay events
    are summarized only when ``verbose`` is set — they are emitted at
    per-loop granularity and would otherwise drown the report.
    """

    def __init__(
        self,
        *args: IO[str],
        stream: IO[str] | None = None,
        min_interval: float = 0.0,
        verbose: bool = False,
    ) -> None:
        if args:
            if len(args) > 1 or stream is not None:
                raise TypeError(
                    "ConsoleSink takes at most one stream argument"
                )
            warnings.warn(
                "passing the stream positionally to ConsoleSink is "
                "deprecated; use ConsoleSink(stream=...)",
                DeprecationWarning, stacklevel=2,
            )
            stream = args[0]
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval = min_interval
        self._verbose = verbose
        self._last_iter_print = -float("inf")
        self._lock = threading.Lock()

    # -- formatting ----------------------------------------------------
    def _format(self, e: Event) -> str | None:
        f = e.fields
        if e.type == "iteration":
            now = time.monotonic()
            if now - self._last_iter_print < self._min_interval:
                return None
            self._last_iter_print = now
            ub = f.get("upper_bound", float("nan"))
            ub_txt = f" ub={ub:.4f}" if isinstance(
                ub, float) and math.isfinite(ub) else ""
            return (
                f"[{f.get('method', '?')}] it {f.get('iteration'):>4} "
                f"obj={f.get('objective'):.4f} "
                f"(w={f.get('weight_part'):.3f}, "
                f"ov={f.get('overlap_part'):.0f}){ub_txt} "
                f"src={f.get('source')}"
            )
        if e.type == "rounding":
            if not self._verbose:
                return None
            return (
                f"  round it={f.get('iteration')} src={f.get('source')} "
                f"matcher={f.get('matcher')} obj={f.get('objective'):.4f} "
                f"|M|={f.get('cardinality')}"
            )
        if e.type == "matching":
            if not self._verbose:
                return None
            return (
                f"  match {f.get('algorithm')} |M|={f.get('cardinality')} "
                f"w={f.get('weight'):.4f} rounds={f.get('rounds')}"
            )
        if e.type == "trace_replay":
            if not self._verbose and f.get("kind") != "iteration":
                return None
            extra = ""
            if "n_threads" in f:
                extra = f" p={f['n_threads']}"
            return (
                f"  sim {f.get('kind')}:{f.get('step')}"
                f"{extra} {f.get('seconds') * 1e3:.3f} ms"
            )
        if e.type == "barrier":
            if not self._verbose:
                return None
            return (
                f"  barrier {f.get('step')} p={f.get('n_threads')} "
                f"{f.get('seconds') * 1e6:.2f} us"
            )
        if e.type == "span_start":
            return f">> {f.get('name')}"
        if e.type == "span_end":
            return f"<< {f.get('name')} ({f.get('seconds'):.3f} s)"
        if e.type == "metric":
            return (
                f"  metric {f.get('metric')}{f.get('labels')} "
                f"= {f.get('value')}"
            )
        return None  # pragma: no cover - schema is closed

    def write(self, event: Event) -> None:
        line = self._format(event)
        if line is None:
            return
        with self._lock:
            self._stream.write(line + "\n")

    def close(self) -> None:
        try:
            self._stream.flush()
        except (ValueError, io.UnsupportedOperation):  # closed stream
            pass


class NullSink:
    """Swallows events (keeps the bus active without storing anything)."""

    def write(self, event: Event) -> None:
        pass

    def close(self) -> None:
        pass


#: Registry name → ``module:Class`` for every constructible sink.  The
#: exporter entries resolve lazily so importing :mod:`repro.observe.sinks`
#: never pulls in the export layer.
_SINK_REGISTRY: dict[str, str] = {
    "memory": "repro.observe.sinks:MemorySink",
    "jsonl": "repro.observe.sinks:JSONLSink",
    "console": "repro.observe.sinks:ConsoleSink",
    "null": "repro.observe.sinks:NullSink",
    "prometheus": "repro.observe.export:PrometheusExporter",
    "otlp": "repro.observe.export:OTLPExporter",
}

#: Every name :func:`make_sink` accepts, sorted.
SINK_NAMES: tuple[str, ...] = tuple(sorted(_SINK_REGISTRY))


def make_sink(name: str, **opts) -> Sink:
    """Construct a sink by registry name with uniform keyword options.

    Args:
        name: One of :data:`SINK_NAMES` — ``"memory"``, ``"jsonl"``,
            ``"console"``, ``"null"``, ``"prometheus"``, ``"otlp"``.
        **opts: Keyword options forwarded to the sink's constructor
            (e.g. ``path=`` for jsonl/prometheus/otlp, ``stream=`` /
            ``verbose=`` for console, ``interval_s=``/``registry=``
            for the exporters).

    Returns:
        The constructed sink, ready for ``bus.add_sink``.

    Raises:
        ObservabilityError: On an unknown name or options the named
            sink does not accept.

    >>> sink = make_sink("memory")
    >>> type(sink).__name__
    'MemorySink'
    """
    target = _SINK_REGISTRY.get(name)
    if target is None:
        raise ObservabilityError(
            f"unknown sink {name!r}; known sinks: {', '.join(SINK_NAMES)}"
        )
    module_name, _, class_name = target.partition(":")
    cls = getattr(importlib.import_module(module_name), class_name)
    try:
        return cls(**opts)
    except TypeError as exc:
        raise ObservabilityError(
            f"bad options for sink {name!r}: {exc}"
        ) from None
