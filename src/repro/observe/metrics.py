"""A minimal labeled metrics registry (counters, gauges, histograms).

The shape follows the Prometheus client conventions — an instrument is
identified by a metric name plus a frozen label set, and the registry
caches instruments so hot paths pay one dict lookup — but with zero
dependencies and a snapshot format that is plain JSON.

>>> reg = MetricsRegistry()
>>> reg.counter("roundings_total", matcher="approx").inc()
>>> reg.counter("roundings_total", matcher="approx").inc(2.0)
>>> reg.counter("roundings_total", matcher="approx").value
3.0
>>> reg.gauge("objective").set(12.5)
>>> h = reg.histogram("iter_seconds")
>>> h.observe(0.25); h.count, h.sum
(1, 0.25)
>>> sorted(row["metric"] for row in reg.snapshot())
['iter_seconds', 'objective', 'roundings_total']
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import Any

from repro.errors import ObservabilityError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


#: Default histogram bucket upper bounds (seconds-flavored, geometric).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0,
)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ObservabilityError("counters can only increase")
        self.value += amount


class Gauge:
    """A value that can move both ways."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the current value by ``amount`` (may be negative)."""
        self.value += amount


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are upper bounds; an implicit +inf bucket catches the
    rest (so ``sum(bucket_counts) == count`` always holds).
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(buckets) != sorted(buckets):
            raise ObservabilityError("histogram buckets must be sorted")
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1


class MetricsRegistry:
    """Caches labeled instruments; snapshots to plain dicts.

    Label values are stringified at lookup (label sets are identities,
    not data).  Requesting the same (name, labels) twice returns the
    same instrument; requesting the same name with a different
    instrument kind raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple, Any] = {}
        self._kinds: dict[str, str] = {}
        self._lock = threading.Lock()

    def _get(self, kind: str, name: str, labels: dict, factory):
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        inst = self._instruments.get(key)
        if inst is not None:
            if self._kinds[name] != kind:
                self._kind_conflict(name, kind)
            return inst
        with self._lock:
            inst = self._instruments.get(key)
            if inst is not None:
                if self._kinds[name] != kind:
                    self._kind_conflict(name, kind)
                return inst
            seen = self._kinds.get(name)
            if seen is not None and seen != kind:
                self._kind_conflict(name, kind)
            self._kinds[name] = kind
            inst = factory()
            self._instruments[key] = inst
            return inst

    def _kind_conflict(self, name: str, kind: str) -> None:
        raise ObservabilityError(
            f"metric {name!r} already registered as "
            f"{self._kinds[name]}, requested as {kind}"
        )

    def counter(self, name: str, **labels) -> Counter:
        """Get (or create) the counter ``name{labels}``."""
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get (or create) the gauge ``name{labels}``."""
        return self._get("gauge", name, labels, Gauge)

    def histogram(
        self, name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        """Get (or create) the histogram ``name{labels}``."""
        return self._get(
            "histogram", name, labels, lambda: Histogram(buckets)
        )

    @contextmanager
    def timer(self, name: str, **labels):
        """Time a block into the histogram ``name{labels}`` (seconds).

        >>> reg = MetricsRegistry()
        >>> with reg.timer("dispatch_seconds", backend="serial"):
        ...     pass
        >>> reg.histogram("dispatch_seconds", backend="serial").count
        1
        """
        hist = self.histogram(name, **labels)
        t0 = time.perf_counter()
        try:
            yield hist
        finally:
            hist.observe(time.perf_counter() - t0)

    def snapshot(self) -> list[dict[str, Any]]:
        """All instruments as JSON-ready rows (sorted by name, labels)."""
        rows = []
        for (name, label_items), inst in sorted(self._instruments.items()):
            row: dict[str, Any] = {
                "metric": name,
                "metric_kind": self._kinds[name],
                "labels": dict(label_items),
            }
            if isinstance(inst, Histogram):
                row["value"] = inst.sum
                row["count"] = inst.count
                row["min"] = inst.min if inst.count else None
                row["max"] = inst.max if inst.count else None
                row["buckets"] = list(inst.buckets)
                row["bucket_counts"] = list(inst.bucket_counts)
            else:
                row["value"] = inst.value
            rows.append(row)
        return rows

    def publish(self, bus) -> int:
        """Emit one ``metric`` event per instrument onto ``bus``.

        Returns the number of events emitted (0 when the bus is
        inactive).
        """
        if not bus.active:
            return 0
        rows = self.snapshot()
        for row in rows:
            bus.emit("metric", **row)
        return len(rows)

    def reset(self) -> None:
        """Forget every instrument (tests, or between CLI commands)."""
        with self._lock:
            self._instruments.clear()
            self._kinds.clear()
