"""Dashboard panel definitions, generated — never hand-edited.

The committed ``dashboards/*.json`` files are the rendered output of
this module; a drift test regenerates them and fails if the checked-in
copies differ.  Because every panel query is built from the metric-name
constants in :mod:`repro.serve.telemetry` and every annotation from the
closed event schema in :mod:`repro.observe.events`, a renamed metric or
a removed event type breaks the build here — at generation time — not
silently on a wallboard.

Regenerate after changing metrics or the schema::

    python -m repro.observe.dashboards dashboards/

The JSON shape is the familiar Grafana dashboard model (``panels`` with
``targets`` holding PromQL ``expr`` strings against the
``GET /v1/metrics`` scrape); ``docs/dashboards.md`` catalogues the
panels and shows a scrape config.
"""

from __future__ import annotations

import json
import os
import sys

from repro.errors import ObservabilityError
from repro.observe.events import EVENT_TYPES

__all__ = ["DASHBOARD_NAMES", "render_dashboards", "write_dashboards"]

#: The dashboard files this module owns (basenames under ``dashboards/``).
DASHBOARD_NAMES = (
    "serve_latency.json",
    "serve_throughput.json",
    "degradation.json",
    "breaker.json",
    "warm_vs_cold.json",
)

#: Bus-side counters referenced by panels (emitted by ``repro.serve``
#: via the observe bus; names asserted against the source at test time).
_JOBS_TOTAL = "repro_serve_jobs_total"
_CACHE_HITS = "repro_serve_cache_hits_total"
_CACHE_INSERTIONS = "repro_serve_cache_insertions_total"


def _require_events(*types: str) -> None:
    """Fail generation if a referenced event type left the schema.

    Args:
        *types: Event-type names a dashboard's annotations rely on.

    Raises:
        ObservabilityError: When any name is no longer in
            :data:`~repro.observe.events.EVENT_TYPES`.
    """
    missing = [t for t in types if t not in EVENT_TYPES]
    if missing:
        raise ObservabilityError(
            f"dashboard references unknown event types: {missing}"
        )


def _panel(title: str, exprs: list[tuple[str, str]], *,
           kind: str = "timeseries", unit: str = "short",
           description: str = "") -> dict:
    """Build one panel object.

    Args:
        title: Panel title.
        exprs: ``(legend, promql)`` pairs, one target each.
        kind: Grafana panel type (``timeseries``, ``stat``, ``gauge``).
        unit: Display unit (``s``, ``reqps``, ``percentunit``, …).
        description: Hover help for the panel.
    """
    return {
        "title": title,
        "type": kind,
        "description": description,
        "fieldConfig": {"defaults": {"unit": unit}},
        "targets": [
            {"legendFormat": legend, "expr": expr}
            for legend, expr in exprs
        ],
    }


def _dashboard(uid: str, title: str, panels: list[dict],
               tags: list[str]) -> dict:
    """Assemble one dashboard document around its panels."""
    return {
        "uid": uid,
        "title": title,
        "tags": ["repro", *tags],
        "schemaVersion": 39,
        "refresh": "10s",
        "time": {"from": "now-1h", "to": "now"},
        "panels": panels,
    }


def render_dashboards() -> dict[str, str]:
    """Render every dashboard to deterministic JSON text.

    Returns:
        Mapping of basename (:data:`DASHBOARD_NAMES`) to the exact file
        content the repository commits under ``dashboards/`` — stable
        key order, two-space indent, trailing newline — so the drift
        test can compare byte-for-byte.
    """
    # Imported lazily: telemetry lives in repro.serve, which imports
    # repro.observe — a module-level import here would be circular.
    from repro.serve import telemetry as t

    _require_events("backend_degraded", "task_retry", "metric")
    lat = t.METRIC_LATENCY
    req = t.METRIC_REQUESTS

    latency = _dashboard("repro-serve-latency", "Serve · Latency", [
        _panel(
            "Request latency quantiles", [
                (f"p{int(q * 100)} {{{{route}}}}",
                 f"histogram_quantile({q}, sum by (le, route) "
                 f"(rate({lat}_bucket[5m])))")
                for q in (0.5, 0.95, 0.99)
            ], unit="s",
            description="Per-route latency from the request histogram.",
        ),
        _panel(
            "Mean latency", [
                ("{{route}}",
                 f"sum by (route) (rate({lat}_sum[5m])) / "
                 f"sum by (route) (rate({lat}_count[5m]))"),
            ], unit="s",
            description="Rolling mean; compare against the quantiles.",
        ),
        _panel(
            "In-flight requests",
            [("in flight", t.METRIC_IN_FLIGHT)],
            description="Concurrent requests inside the handler.",
        ),
    ], ["serve", "latency"])

    throughput = _dashboard(
        "repro-serve-throughput", "Serve · Throughput", [
            _panel(
                "Requests by route and status", [
                    ("{{route}} {{status}}",
                     f"sum by (route, status) (rate({req}[5m]))"),
                ], unit="reqps",
                description="Request rate split by route template and "
                            "response status code.",
            ),
            _panel(
                "Legacy (unversioned) share", [
                    ("legacy fraction",
                     f'sum(rate({req}{{api="legacy"}}[5m])) / '
                     f"sum(rate({req}[5m]))"),
                ], unit="percentunit",
                description="Traffic still on deprecated unprefixed "
                            "routes; should trend to zero as clients "
                            "migrate to /v1.",
            ),
            _panel(
                "Queue depth and active jobs", [
                    ("queued", t.METRIC_QUEUE_DEPTH),
                    ("active", t.METRIC_ACTIVE_JOBS),
                ],
                description="Jobs waiting for a worker vs admitted and "
                            "unfinished.",
            ),
            _panel(
                "Job outcomes", [
                    ("{{state}}",
                     f"sum by (state) (rate({_JOBS_TOTAL}[5m]))"),
                ], unit="reqps",
                description="Terminal job states per second "
                            "(done / failed / cancelled).",
            ),
        ], ["serve", "throughput"])

    degradation = _dashboard(
        "repro-degradation", "Resilience · Degradation ladder", [
            _panel(
                "Degradation steps", [
                    ("{{site}} → {{to_backend}}",
                     f"sum by (site, to_backend) "
                     f"(rate({t.METRIC_DEGRADED}[5m]))"),
                ],
                description="backend_degraded events folded into the "
                            "telemetry registry: each step walks the "
                            "backend ladder at a dispatch site.",
            ),
            _panel(
                "Supervised retries", [
                    ("{{site}}",
                     f"sum by (site) "
                     f"(rate({t.METRIC_RETRY_EVENTS}[5m]))"),
                ],
                description="task_retry events observed while serving.",
            ),
        ], ["resilience"])

    breaker = _dashboard(
        "repro-breaker", "Resilience · Circuit breaker", [
            _panel(
                "Breaker opened (latched)",
                [("{{site}}", t.METRIC_BREAKER_OPEN)],
                kind="stat",
                description="1 once a breaker opened at the site since "
                            "server start; latched on purpose — the "
                            "question a wallboard answers is whether "
                            "the ladder was ever walked.",
            ),
            _panel(
                "Total degradations",
                [("{{site}} → {{to_backend}}", t.METRIC_DEGRADED)],
                kind="stat",
                description="Lifetime degradation count by site.",
            ),
        ], ["resilience"])

    warm_vs_cold = _dashboard(
        "repro-warm-vs-cold", "Serve · Warm vs cold", [
            _panel(
                "Cache hit ratio",
                [("hit ratio", t.METRIC_CACHE_HIT_RATIO)],
                kind="gauge", unit="percentunit",
                description="Lifetime hits / (hits + misses) of the "
                            "content-addressed result cache.",
            ),
            _panel(
                "Cache traffic", [
                    ("hits", f"rate({_CACHE_HITS}[5m])"),
                    ("insertions", f"rate({_CACHE_INSERTIONS}[5m])"),
                ], unit="reqps",
                description="Cache hits (warm responses) against "
                            "insertions (cold solves).",
            ),
            _panel(
                "Store occupancy", [
                    ("cache entries", t.METRIC_CACHE_ENTRIES),
                    ("warm entries", t.METRIC_WARM_ENTRIES),
                ],
                description="Result-cache entries and warm-start states "
                            "resident for incremental realignment.",
            ),
        ], ["serve", "cache"])

    docs = {
        "serve_latency.json": latency,
        "serve_throughput.json": throughput,
        "degradation.json": degradation,
        "breaker.json": breaker,
        "warm_vs_cold.json": warm_vs_cold,
    }
    assert tuple(docs) == DASHBOARD_NAMES
    return {
        name: json.dumps(doc, indent=2, sort_keys=True) + "\n"
        for name, doc in docs.items()
    }


def write_dashboards(directory: str) -> list[str]:
    """Write every rendered dashboard under ``directory``.

    Args:
        directory: Target directory (created if missing).

    Returns:
        The paths written, in :data:`DASHBOARD_NAMES` order.
    """
    os.makedirs(directory, exist_ok=True)
    paths = []
    for name, text in render_dashboards().items():
        path = os.path.join(directory, name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        paths.append(path)
    return paths


if __name__ == "__main__":
    out = sys.argv[1] if len(sys.argv) > 1 else "dashboards"
    for p in write_dashboards(out):
        print(f"wrote {p}")
