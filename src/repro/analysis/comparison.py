"""Comparing alignments with each other.

The paper's §VII studies *pairs* of solution sets (exact vs approximate
rounding); steering sessions (§IX) produce sequences of solutions.  This
module quantifies how two alignments differ: pairwise agreement, Jaccard
similarity of the matched-pair sets, and the explicit disagreement list.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import asarray_i64
from repro.errors import DimensionError

__all__ = ["AlignmentComparison", "compare_alignments"]


@dataclass(frozen=True)
class AlignmentComparison:
    """Summary of how two mate arrays relate.

    ``agreement`` is over A-vertices matched by *both* (same partner);
    ``jaccard`` is |pairs∩| / |pairs∪| over the matched-pair sets;
    ``only_first``/``only_second`` count vertices matched by exactly one.
    """

    n_vertices: int
    both_matched: int
    agreement: float
    jaccard: float
    only_first: int
    only_second: int
    disagreements: tuple[tuple[int, int, int], ...]

    def as_text(self) -> str:
        """Human-readable summary."""
        return (
            f"both matched        {self.both_matched}/{self.n_vertices}\n"
            f"agreement           {self.agreement:.3f}\n"
            f"jaccard             {self.jaccard:.3f}\n"
            f"matched only by 1st {self.only_first}\n"
            f"matched only by 2nd {self.only_second}\n"
            f"disagreements       {len(self.disagreements)}"
        )


def compare_alignments(
    mate_a_first: np.ndarray, mate_a_second: np.ndarray
) -> AlignmentComparison:
    """Compare two A-side mate arrays of the same problem."""
    first = asarray_i64(mate_a_first)
    second = asarray_i64(mate_a_second)
    if first.shape != second.shape:
        raise DimensionError("mate arrays have different lengths")
    n = len(first)
    m1 = first >= 0
    m2 = second >= 0
    both = m1 & m2
    same = both & (first == second)
    pairs_union = int(m1.sum() + m2.sum() - same.sum())
    disagreements = tuple(
        (int(a), int(first[a]), int(second[a]))
        for a in np.flatnonzero(both & (first != second)).tolist()
    )
    return AlignmentComparison(
        n_vertices=n,
        both_matched=int(both.sum()),
        agreement=float(same[both].mean()) if both.any() else 1.0,
        jaccard=(
            float(same.sum() / pairs_union) if pairs_union else 1.0
        ),
        only_first=int((m1 & ~m2).sum()),
        only_second=int((m2 & ~m1).sum()),
        disagreements=disagreements,
    )
