"""Alignment analysis: solution metrics and convergence diagnostics.

Network alignment outputs need interpretation (the paper's §IX framing:
the objective "is only an approximation for most users' true goal").
This package provides the standard post-hoc measures:

* :mod:`~repro.analysis.metrics` — correctness vs a reference alignment,
  edge correctness / induced conserved structure, node coverage, and the
  objective decomposition.
* :mod:`~repro.analysis.convergence` — iteration-trace diagnostics:
  best-so-far curves, oscillation measures, Klau duality gaps, and
  stopping-criterion analysis (§III-C: "no simple stopping criteria is
  possible").
"""

from repro.analysis.comparison import AlignmentComparison, compare_alignments
from repro.analysis.convergence import (
    best_so_far,
    duality_gap_trace,
    oscillation_index,
    plateau_iteration,
)
from repro.analysis.metrics import (
    alignment_report,
    edge_correctness,
    induced_conserved_structure,
    node_coverage,
    pair_correctness,
)

__all__ = [
    "AlignmentComparison",
    "alignment_report",
    "best_so_far",
    "compare_alignments",
    "duality_gap_trace",
    "edge_correctness",
    "induced_conserved_structure",
    "node_coverage",
    "oscillation_index",
    "pair_correctness",
    "plateau_iteration",
]
