"""Solution-quality metrics for alignments.

These are the measures the network-alignment literature reports alongside
the raw objective (cf. the bioinformatics applications in §I/§VI): how
much of a trusted reference is recovered, how much graph structure the
alignment conserves, and how completely the vertex sets are covered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import asarray_i64
from repro.core.problem import NetworkAlignmentProblem
from repro.errors import DimensionError
from repro.matching.result import MatchingResult

__all__ = [
    "pair_correctness",
    "edge_correctness",
    "induced_conserved_structure",
    "node_coverage",
    "AlignmentReport",
    "alignment_report",
]


def pair_correctness(
    mate_a: np.ndarray, reference_mate_a: np.ndarray
) -> float:
    """Fraction of reference pairs recovered (a.k.a. node correctness).

    Vertices without a reference partner (``-1``) are excluded from the
    denominator.
    """
    mate_a = asarray_i64(mate_a)
    reference = asarray_i64(reference_mate_a)
    if mate_a.shape != reference.shape:
        raise DimensionError("mate arrays have different lengths")
    known = reference >= 0
    if not known.any():
        return 0.0
    return float((mate_a[known] == reference[known]).mean())


def edge_correctness(
    problem: NetworkAlignmentProblem, matching: MatchingResult
) -> float:
    """Fraction of A's edges mapped onto B edges (EC measure).

    ``EC = overlapped edges / |E_A|`` — the standard normalization in the
    PPI-alignment literature (GRAAL and successors).
    """
    if problem.a_graph.m == 0:
        return 0.0
    x = matching.indicator(problem.n_edges_l)
    return problem.overlap(x) / problem.a_graph.m


def induced_conserved_structure(
    problem: NetworkAlignmentProblem, matching: MatchingResult
) -> float:
    """ICS: overlapped edges / edges of B induced by the matched image.

    Penalizes mapping sparse regions of A onto dense regions of B (an
    alignment can have high EC but low ICS).
    """
    mate_a = matching.mate_a
    matched_b = mate_a[mate_a >= 0]
    if len(matched_b) == 0:
        return 0.0
    in_image = np.zeros(problem.b_graph.n, dtype=bool)
    in_image[matched_b] = True
    induced = int(
        (in_image[problem.b_graph.edge_u] & in_image[problem.b_graph.edge_v]).sum()
    )
    if induced == 0:
        return 0.0
    x = matching.indicator(problem.n_edges_l)
    return problem.overlap(x) / induced


def node_coverage(
    problem: NetworkAlignmentProblem, matching: MatchingResult
) -> tuple[float, float]:
    """Fraction of A-vertices and B-vertices covered by the matching."""
    covered_a = float((matching.mate_a >= 0).mean()) if problem.ell.n_a else 0.0
    covered_b = float((matching.mate_b >= 0).mean()) if problem.ell.n_b else 0.0
    return covered_a, covered_b


@dataclass(frozen=True)
class AlignmentReport:
    """Bundle of all metrics for one solution."""

    objective: float
    weight: float
    overlap: float
    edge_correctness: float
    induced_conserved_structure: float
    coverage_a: float
    coverage_b: float
    pair_correctness: float | None

    def as_text(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"objective             {self.objective:.3f}",
            f"matching weight       {self.weight:.3f}",
            f"overlapped edges      {self.overlap:.0f}",
            f"edge correctness      {self.edge_correctness:.3f}",
            f"ICS                   {self.induced_conserved_structure:.3f}",
            f"coverage (A, B)       {self.coverage_a:.3f}, {self.coverage_b:.3f}",
        ]
        if self.pair_correctness is not None:
            lines.append(f"pair correctness      {self.pair_correctness:.3f}")
        return "\n".join(lines)


def alignment_report(
    problem: NetworkAlignmentProblem,
    matching: MatchingResult,
    reference_mate_a: np.ndarray | None = None,
) -> AlignmentReport:
    """Compute every metric for ``matching`` on ``problem``."""
    x = matching.indicator(problem.n_edges_l)
    objective, weight, overlap = problem.objective_parts(x)
    cov_a, cov_b = node_coverage(problem, matching)
    return AlignmentReport(
        objective=objective,
        weight=weight,
        overlap=overlap,
        edge_correctness=edge_correctness(problem, matching),
        induced_conserved_structure=induced_conserved_structure(
            problem, matching
        ),
        coverage_a=cov_a,
        coverage_b=cov_b,
        pair_correctness=(
            pair_correctness(matching.mate_a, reference_mate_a)
            if reference_mate_a is not None
            else None
        ),
    )
