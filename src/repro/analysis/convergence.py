"""Convergence diagnostics over iteration histories (§III-C).

The paper: *"Both algorithms generate a sequence of heuristic weight
vectors whose solution quality varies continually.  There is no
monotonicity in the solution quality ... no simple stopping criteria is
possible."*  These helpers quantify that behaviour from an
:class:`~repro.core.result.AlignmentResult` history: best-so-far curves,
an oscillation index, plateau detection, and Klau's duality-gap trace.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import AlignmentResult
from repro.errors import ValidationError

__all__ = [
    "best_so_far",
    "oscillation_index",
    "plateau_iteration",
    "duality_gap_trace",
]


def best_so_far(result: AlignmentResult) -> np.ndarray:
    """Running maximum of the rounded objective (monotone by definition)."""
    objs = result.objective_trace()
    if len(objs) == 0:
        raise ValidationError("result has no iteration history")
    return np.maximum.accumulate(objs)


def oscillation_index(result: AlignmentResult) -> float:
    """How non-monotone the raw objective sequence is, in [0, 1].

    0 = monotone non-decreasing; 1 = every step moves against the trend.
    Computed as the fraction of iterations whose objective *decreases*
    relative to the previous one.
    """
    objs = result.objective_trace()
    if len(objs) < 2:
        return 0.0
    return float((np.diff(objs) < 0).mean())


def plateau_iteration(
    result: AlignmentResult, tolerance: float = 1e-9
) -> int:
    """First iteration after which the best objective never improves.

    This is the empirical answer to "how many iterations did we actually
    need" — the paper runs 400–1000 because no stopping rule exists, but
    the plateau typically arrives much earlier.
    """
    curve = best_so_far(result)
    final = curve[-1]
    hits = np.flatnonzero(curve >= final - tolerance)
    return int(result.history[hits[0]].iteration)


def duality_gap_trace(result: AlignmentResult) -> np.ndarray:
    """Klau's per-iteration gap: best upper bound so far − best objective.

    Only meaningful for MR results (BP records no upper bounds — the
    trace is all-NaN there).  A gap that reaches zero certifies global
    optimality (§III-A).
    """
    uppers = result.upper_bound_trace()
    objs = result.objective_trace()
    if len(uppers) == 0:
        raise ValidationError("result has no iteration history")
    best_upper = np.fmin.accumulate(uppers)
    best_obj = np.maximum.accumulate(objs)
    return best_upper - best_obj
