"""Matching-based graph coarsening for the multilevel V-cycle.

One coarsening step collapses the pairs of a locally-dominant heavy-edge
matching (the ½-approximation of paper §V, run on A or B itself rather
than on L) into supernodes.  Heavy edges are the ones a good alignment
must preserve, so contracting them first keeps the coarse problem's
optimum close to the fine one — the same heuristic CAPER-style multilevel
aligners and multilevel partitioners use.

Three objects make the step explicit and testable:

* :class:`CoarseningMap` — the fine→coarse vertex surjection, with
  ``compose`` (maps across levels chain into one), ``prolong`` (gather a
  coarse vector up to fine vertices) and ``restrict_sum`` (scatter-add a
  fine vector down to coarse vertices).
* :func:`coarsen_graph` — one heavy-edge collapse of a
  :class:`~repro.graph.graph.Graph`; coarse edge weights are the summed
  multiplicities of the collapsed fine edges, which is what the *next*
  level's heavy-edge matching should score (level 0 starts from unit
  weights).
* :func:`project_ell` — push the candidate graph L and its weight vector
  **w** through a pair of vertex maps; the returned
  :class:`EllProjection` carries the fine-edge → coarse-edge map used to
  expand coarse matchings into fine priors (``prolong``) and to restrict
  fine weight vectors (``restrict_sum``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import asarray_f64, asarray_i64
from repro.errors import DimensionError, ValidationError
from repro.graph.graph import Graph
from repro.matching.locally_dominant import locally_dominant_mates
from repro.sparse.bipartite import BipartiteGraph
from repro.sparse.csr import CSRMatrix

__all__ = [
    "CoarseningMap",
    "CoarsenedGraph",
    "EllProjection",
    "coarsen_graph",
    "project_ell",
    "project_squares",
]


@dataclass(frozen=True)
class CoarseningMap:
    """A surjection from ``n_fine`` fine vertices onto ``n_coarse`` supernodes.

    ``fine_to_coarse[v]`` is the supernode of fine vertex ``v``.  Every
    supernode must own at least one fine vertex (the map is onto) — a
    heavy-edge collapse produces blocks of size 1 (unmatched) or 2
    (matched pair), but the container accepts any surjection so composed
    maps across several levels validate too.
    """

    n_fine: int
    n_coarse: int
    fine_to_coarse: np.ndarray

    def __post_init__(self) -> None:
        f2c = asarray_i64(self.fine_to_coarse)
        object.__setattr__(self, "fine_to_coarse", f2c)
        if f2c.shape != (self.n_fine,):
            raise DimensionError(
                f"fine_to_coarse has shape {f2c.shape}, expected "
                f"({self.n_fine},)"
            )
        if self.n_fine == 0:
            if self.n_coarse != 0:
                raise ValidationError("empty fine set cannot cover supernodes")
            return
        if f2c.min() < 0 or f2c.max() >= self.n_coarse:
            raise ValidationError("fine_to_coarse id out of range")
        if len(np.unique(f2c)) != self.n_coarse:
            raise ValidationError(
                "fine_to_coarse is not onto: some supernode owns no "
                "fine vertex"
            )

    def compose(self, coarser: "CoarseningMap") -> "CoarseningMap":
        """The map fine → ``coarser``'s coarse space (two levels in one).

        ``self`` maps fine → mid, ``coarser`` maps mid → coarse; the
        composition is one gather.  Associative, so a whole hierarchy
        folds into a single fine→coarsest map.
        """
        if coarser.n_fine != self.n_coarse:
            raise DimensionError(
                f"cannot compose: this map produces {self.n_coarse} "
                f"vertices, the coarser one consumes {coarser.n_fine}"
            )
        return CoarseningMap(
            self.n_fine,
            coarser.n_coarse,
            coarser.fine_to_coarse[self.fine_to_coarse],
        )

    def block_sizes(self) -> np.ndarray:
        """Fine vertices per supernode (1 or 2 for one heavy-edge collapse)."""
        return np.bincount(self.fine_to_coarse, minlength=self.n_coarse)

    def prolong(self, coarse_values: np.ndarray) -> np.ndarray:
        """Gather per-supernode values up to fine vertices."""
        coarse_values = np.asarray(coarse_values)
        if coarse_values.shape != (self.n_coarse,):
            raise DimensionError("coarse_values has wrong length")
        return coarse_values[self.fine_to_coarse]

    def restrict_sum(self, fine_values: np.ndarray) -> np.ndarray:
        """Scatter-add per-fine-vertex values down to supernodes."""
        fine_values = asarray_f64(fine_values)
        if fine_values.shape != (self.n_fine,):
            raise DimensionError("fine_values has wrong length")
        return np.bincount(
            self.fine_to_coarse, weights=fine_values, minlength=self.n_coarse
        )


@dataclass(frozen=True)
class CoarsenedGraph:
    """One coarsening step's output: the coarse graph + bookkeeping.

    ``edge_weights`` are per-coarse-edge multiplicities (summed fine
    weights of the collapsed edges); feed them back into
    :func:`coarsen_graph` to keep the next level's matching heavy-edge.
    """

    graph: Graph
    edge_weights: np.ndarray
    cmap: CoarseningMap


def coarsen_graph(
    graph: Graph,
    edge_weights: np.ndarray | None = None,
    *,
    max_degree: int = 0,
) -> CoarsenedGraph:
    """Collapse one locally-dominant heavy-edge matching of ``graph``.

    Matched pairs merge into one supernode; unmatched vertices survive
    alone.  Supernode ids are assigned in increasing order of the block's
    smallest fine vertex id, which makes the map deterministic (the
    matcher's tie-breaking is already deterministic).  Coarse edges drop
    the intra-block ones and sum the weights of parallel survivors.

    ``max_degree > 0`` keeps only each coarse vertex's ``max_degree``
    heaviest incident edges (an edge survives if *either* endpoint ranks
    it): collapsing halves vertex counts but not edge counts, so without
    a cap coarse degrees — and with them the coarse squares matrix —
    grow geometrically down the hierarchy.
    """
    n, m = graph.n, graph.m
    if edge_weights is None:
        w = np.ones(m)
    else:
        w = asarray_f64(edge_weights)
        if w.shape != (m,):
            raise DimensionError("edge_weights has wrong length")

    # Half-edge adjacency carrying per-edge weights, built exactly like
    # Graph's own CSR (same lexsort) so it shares graph.indptr.
    heads = np.concatenate([graph.edge_u, graph.edge_v])
    tails = np.concatenate([graph.edge_v, graph.edge_u])
    half_w = np.concatenate([w, w])
    order = np.lexsort((tails, heads))
    mate, _ = locally_dominant_mates(
        graph.indptr, tails[order], half_w[order], collect_rounds=False
    )

    idx = np.arange(n, dtype=np.int64)
    leaders = np.where(mate >= 0, np.minimum(idx, mate), idx)
    unique_leaders = np.unique(leaders)
    f2c = np.searchsorted(unique_leaders, leaders)
    cmap = CoarseningMap(n, len(unique_leaders), f2c)

    cu = f2c[graph.edge_u]
    cv = f2c[graph.edge_v]
    keep = cu != cv  # intra-supernode edges vanish
    lo = np.minimum(cu[keep], cv[keep])
    hi = np.maximum(cu[keep], cv[keep])
    wk = w[keep]
    nc = cmap.n_coarse
    if len(lo):
        key = lo * nc + hi
        order2 = np.argsort(key, kind="stable")
        key = key[order2]
        wk = wk[order2]
        is_new = np.empty(len(key), dtype=bool)
        is_new[0] = True
        is_new[1:] = key[1:] != key[:-1]
        starts = np.flatnonzero(is_new)
        agg = np.add.reduceat(wk, starts)
        ck = key[starts]
        cu2, cv2 = ck // nc, ck % nc
        if max_degree > 0:
            keep2 = _graph_topk_keep_mask(nc, cu2, cv2, agg, max_degree)
            cu2, cv2, agg = cu2[keep2], cv2[keep2], agg[keep2]
        coarse = Graph(nc, cu2, cv2)
    else:
        coarse = Graph(
            nc, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        agg = np.empty(0)
    return CoarsenedGraph(coarse, agg, cmap)


def _graph_topk_keep_mask(
    n: int,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    weights: np.ndarray,
    k: int,
) -> np.ndarray:
    """Edges ranked in a vertex's top ``k`` by weight, on either endpoint.

    Same keep rule as the candidate-list sparsifier below, applied to an
    undirected edge list: per-half-edge ranks via one lexsort over
    (head, -weight), an edge survives if either direction ranks ≤ k.
    """
    m = len(edge_u)
    heads = np.concatenate([edge_u, edge_v])
    hw = np.concatenate([weights, weights])
    order = np.lexsort((-hw, heads))
    counts = np.bincount(heads, minlength=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    rank = np.empty(2 * m, dtype=np.int64)
    rank[order] = np.arange(2 * m) - offsets[heads[order]]
    return (rank[:m] < k) | (rank[m:] < k)


@dataclass(frozen=True)
class EllProjection:
    """The candidate graph L pushed onto a coarse level.

    ``edge_map[e]`` is the coarse L edge that fine L edge ``e`` lands on,
    or ``-1`` when sparsification dropped the target (see
    :func:`project_ell`'s ``max_degree``).  ``prolong`` expands a
    per-coarse-edge vector (e.g. a coarse matching indicator) to the fine
    edge space, writing 0 at dropped edges; ``restrict_sum`` aggregates a
    fine vector down — the pair is the transfer-operator adjoint
    relationship, and without sparsification
    ``restrict_sum(prolong(v))`` multiplies ``v`` by the coarse edge
    multiplicities (golden-tested).
    """

    ell: BipartiteGraph
    edge_map: np.ndarray

    def prolong(self, coarse_values: np.ndarray) -> np.ndarray:
        """Gather per-coarse-edge values up to fine L edges."""
        coarse_values = np.asarray(coarse_values)
        if coarse_values.shape != (self.ell.n_edges,):
            raise DimensionError("coarse_values has wrong length")
        safe = np.maximum(self.edge_map, 0)
        return np.where(self.edge_map >= 0, coarse_values[safe], 0.0)

    def restrict_sum(self, fine_values: np.ndarray) -> np.ndarray:
        """Scatter-add per-fine-edge values down to coarse L edges."""
        fine_values = asarray_f64(fine_values)
        if fine_values.shape != (len(self.edge_map),):
            raise DimensionError("fine_values has wrong length")
        kept = self.edge_map >= 0
        return np.bincount(
            self.edge_map[kept],
            weights=fine_values[kept],
            minlength=self.ell.n_edges,
        )

    def multiplicities(self) -> np.ndarray:
        """Fine edges collapsed onto each surviving coarse edge."""
        kept = self.edge_map >= 0
        return np.bincount(self.edge_map[kept], minlength=self.ell.n_edges)


def _topk_keep_mask(ell: BipartiteGraph, k: int) -> np.ndarray:
    """Edges ranked in the top ``k`` by weight on either endpoint.

    Per-vertex ranks come from one lexsort per side (weight descending
    within each vertex's segment); an edge survives if *either* endpoint
    ranks it highly, so mutually-best candidate pairs always survive.
    """
    m = ell.n_edges
    rank_a = np.empty(m, dtype=np.int64)
    order_a = np.lexsort((-ell.weights, ell.edge_a))
    rank_a[order_a] = np.arange(m) - ell.row_ptr[ell.edge_a[order_a]]
    rank_b = np.empty(m, dtype=np.int64)
    order_b = np.lexsort((-ell.weights, ell.edge_b))
    rank_b[order_b] = np.arange(m) - ell.col_ptr[ell.edge_b[order_b]]
    return (rank_a < k) | (rank_b < k)


def project_ell(
    ell: BipartiteGraph,
    map_a: CoarseningMap,
    map_b: CoarseningMap,
    *,
    max_degree: int = 0,
) -> EllProjection:
    """Push L through a pair of vertex maps (A side, B side).

    Coarse edge weights are the *sums* of the fine weights that collapse
    onto them, so a coarse matching weight counts all the fine evidence
    behind each supernode pair.

    ``max_degree > 0`` sparsifies the coarse candidate list to the
    heaviest ``max_degree`` edges per vertex (kept if top-ranked on
    either side).  Without it the squares matrix *densifies*
    geometrically as vertex counts halve while graph edges survive —
    sparsification is what makes deep hierarchies cheaper than flat runs.
    Dropped targets appear as ``-1`` in ``edge_map``.
    """
    if map_a.n_fine != ell.n_a or map_b.n_fine != ell.n_b:
        raise DimensionError(
            f"vertex maps cover ({map_a.n_fine}, {map_b.n_fine}) but L "
            f"connects ({ell.n_a}, {ell.n_b})"
        )
    ca = map_a.fine_to_coarse[ell.edge_a]
    cb = map_b.fine_to_coarse[ell.edge_b]
    coarse = BipartiteGraph.from_edges(
        map_a.n_coarse, map_b.n_coarse, ca, cb, ell.weights, dedup="sum"
    )
    if max_degree > 0:
        coarse = coarse.subgraph(_topk_keep_mask(coarse, max_degree))
    edge_map = coarse.lookup_edges(ca, cb)
    return EllProjection(coarse, edge_map)


def project_squares(
    fine_squares: CSRMatrix, proj: EllProjection
) -> CSRMatrix:
    """Push the fine squares matrix **S** through an L projection.

    A fine square is a pair of L edges ``(e, f)`` whose endpoints are
    adjacent in both A and B; its image ``(edge_map[e], edge_map[f])`` is
    a pair of coarse candidate edges that still witnesses consistent
    structure, so the union of images is the coarse overlap estimate.
    This is one vectorized gather + dedup — ``O(nnz)`` — instead of the
    neighborhood-join rebuild, and ``nnz`` never grows (squares whose
    edges collapsed together or were sparsified away disappear;
    duplicates merge).  Squares *created* by the collapse are
    deliberately not discovered: the coarse **S** guides the coarse
    solver, and the refine pass re-scores on the true fine structure.
    """
    m_c = proj.ell.n_edges
    rows = proj.edge_map[fine_squares.row_of_nonzero()]
    cols = proj.edge_map[fine_squares.indices]
    keep = (rows >= 0) & (cols >= 0) & (rows != cols)
    keys = np.unique(rows[keep] * m_c + cols[keep])
    indptr = np.zeros(m_c + 1, dtype=np.int64)
    np.add.at(indptr, keys // m_c + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRMatrix(
        (m_c, m_c), indptr, keys % m_c, np.ones(len(keys)), _checked=True
    )
