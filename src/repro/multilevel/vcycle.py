"""The multilevel V-cycle driver: coarsen → align → expand → refine.

A V-cycle trades iterations on the expensive fine problem for iterations
on a hierarchy of geometrically smaller ones.  Each level collapses a
locally-dominant heavy-edge matching of A and of B
(:func:`repro.multilevel.coarsen.coarsen_graph`) and pushes L down with
it; the coarsest problem is solved with a full BP or Klau run; walking
back up, each coarse matching expands through the level's
:class:`~repro.multilevel.coarsen.EllProjection` into a fine *prior*
that warm-starts a short BP refine pass (``init_messages``), whose
rounding uses the warm-started exact matcher by default.

Work tracing composes: the same ``tracer`` object is handed to the
coarsening steps and every inner solver, so one
:class:`~repro.machine.trace.AlgorithmTracer` accumulates the whole
cycle and :class:`~repro.machine.runtime.SimulatedRuntime` can replay it
on the simulated NUMA machine exactly like a flat run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.accel.config import ParallelConfig
from repro.configtools import ConfigBase
from repro.core.bp import BPConfig, belief_propagation_align
from repro.core.klau import KlauConfig, klau_align
from repro.core.problem import NetworkAlignmentProblem
from repro.core.result import AlignmentResult, IterationRecord
from repro.core.rounding import (
    MATCHER_KINDS,
    Matcher,
    make_matcher,
    round_heuristic,
)
from repro.matching.kernels import KERNEL_KINDS
from repro.errors import ConfigurationError
from repro.multilevel.coarsen import (
    CoarsenedGraph,
    EllProjection,
    coarsen_graph,
    project_ell,
    project_squares,
)
from repro.observe import get_bus

__all__ = ["MultilevelConfig", "multilevel_align"]

#: Solvers usable on the coarsest level.
COARSEST_METHODS = ("bp", "klau")


@dataclass(frozen=True)
class MultilevelConfig(ConfigBase):
    """Parameters of the multilevel V-cycle.

    ``n_levels`` counts levels *including* the finest, so ``n_levels=1``
    degenerates to a flat run of ``coarsest_method``.  Coarsening stops
    early when a level would drop below ``min_vertices`` on either side
    or shrink by less than ``min_shrink`` (matching starvation on
    near-disconnected graphs).  The expanded coarse matching enters each
    refine pass as ``α·w + prior_scale·indicator`` warm-start messages.
    Serializes via :meth:`~repro.configtools.ConfigBase.to_dict` /
    :meth:`~repro.configtools.ConfigBase.from_dict`.
    """

    n_levels: int = 2
    min_vertices: int = 32
    min_shrink: float = 0.95
    #: Heaviest coarse candidate edges kept per vertex (0 = keep all).
    #: Without it, halving vertex counts while graph edges survive
    #: *densifies* the coarse squares matrix geometrically.
    coarse_max_degree: int = 8
    #: Heaviest coarse *graph* edges (by collapsed multiplicity) kept per
    #: supernode in A and B (0 = keep all); bounds coarse degrees so the
    #: coarse squares matrix shrinks with the vertex count.
    graph_max_degree: int = 16
    coarsest_method: str = "bp"
    coarsest_iters: int = 30
    coarsest_matcher: str = "approx"
    refine_iters: int = 3
    #: Matcher for the refine roundings and the expanded-prior rounding.
    #: The prior vector is tie-heavy (α·w plus a 0/1 indicator), which
    #: degenerates exact matchers' augmenting search at scale — the
    #: ½-approximation default handles ties in linear time.
    #: ``"exact-warm"`` is worth trying on small/medium instances where
    #: its dual reuse across the per-iteration roundings wins.
    refine_matcher: str = "approx"
    prior_scale: float = 1.0
    gamma: float = 0.99
    batch: int = 1
    final_exact: bool = True
    #: Accepted on every public config (common surface, round-tripped by
    #: ``to_dict``/``from_dict``); the cycle is deterministic and does
    #: not consume it.
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_levels < 1:
            raise ConfigurationError("n_levels must be >= 1")
        if self.min_vertices < 1:
            raise ConfigurationError("min_vertices must be >= 1")
        if not (0.0 < self.min_shrink <= 1.0):
            raise ConfigurationError("min_shrink must be in (0, 1]")
        if self.coarse_max_degree < 0:
            raise ConfigurationError("coarse_max_degree must be >= 0")
        if self.graph_max_degree < 0:
            raise ConfigurationError("graph_max_degree must be >= 0")
        if self.coarsest_method not in COARSEST_METHODS:
            raise ConfigurationError(
                f"unknown coarsest_method {self.coarsest_method!r}; "
                f"expected one of {COARSEST_METHODS}"
            )
        if self.coarsest_iters < 1:
            raise ConfigurationError("coarsest_iters must be >= 1")
        if self.refine_iters < 0:
            raise ConfigurationError("refine_iters must be >= 0")
        for kind in (self.coarsest_matcher, self.refine_matcher):
            if kind not in MATCHER_KINDS:
                raise ConfigurationError(
                    f"unknown matcher {kind!r}; expected one of "
                    f"{MATCHER_KINDS}"
                )
        if self.prior_scale < 0:
            raise ConfigurationError("prior_scale must be non-negative")
        if not (0.0 < self.gamma <= 1.0):
            raise ConfigurationError("gamma must be in (0, 1]")
        if self.batch < 1:
            raise ConfigurationError("batch must be >= 1")


@dataclass
class _Level:
    """One rung of the hierarchy (the finest has no projection)."""

    problem: NetworkAlignmentProblem
    proj: EllProjection | None = None
    coarse_a: CoarsenedGraph | None = None
    coarse_b: CoarsenedGraph | None = None


def multilevel_align(
    problem: NetworkAlignmentProblem,
    config: MultilevelConfig | None = None,
    tracer: Any | None = None,
    *,
    parallel: ParallelConfig | None = None,
) -> AlignmentResult:
    """Run one V-cycle on ``problem``.

    ``tracer`` collects the work traces of coarsening, the coarse solve
    and every refine pass into a single trace stream the machine model
    replays; ``parallel`` fans the inner BP batched roundings out on an
    execution backend.  When the :mod:`repro.observe` bus has sinks
    attached, the run is wrapped in a ``multilevel.align`` span, each
    level emits a ``multilevel_level`` event, and the
    ``repro_multilevel_*`` metrics are maintained.
    """
    config = config or MultilevelConfig()
    bus = get_bus()
    with bus.trace(
        "multilevel.align",
        n_levels=config.n_levels,
        coarsest_method=config.coarsest_method,
        refine_iters=config.refine_iters,
    ):
        return _vcycle(problem, config, tracer, bus, parallel)


def _emit_level(
    bus, level: int, action: str, problem: NetworkAlignmentProblem
) -> None:
    if bus.active:
        bus.emit(
            "multilevel_level",
            level=level,
            action=action,
            n_a=problem.a_graph.n,
            n_b=problem.b_graph.n,
            n_edges_l=problem.n_edges_l,
        )


def _build_hierarchy(
    problem: NetworkAlignmentProblem,
    config: MultilevelConfig,
    tracer: Any | None,
    bus,
) -> list[_Level]:
    """Coarsen until ``n_levels`` rungs exist or progress stalls."""
    levels = [_Level(problem)]
    a_w: np.ndarray | None = None
    b_w: np.ndarray | None = None
    for lvl in range(1, config.n_levels):
        fine = levels[-1].problem
        if (
            fine.a_graph.n <= config.min_vertices
            or fine.b_graph.n <= config.min_vertices
        ):
            break
        ca = coarsen_graph(
            fine.a_graph, a_w, max_degree=config.graph_max_degree
        )
        cb = coarsen_graph(
            fine.b_graph, b_w, max_degree=config.graph_max_degree
        )
        shrink = (ca.cmap.n_coarse + cb.cmap.n_coarse) / (
            fine.a_graph.n + fine.b_graph.n
        )
        if shrink > config.min_shrink:
            break  # matching starved; a further level buys nothing
        proj = project_ell(
            fine.ell, ca.cmap, cb.cmap,
            max_degree=config.coarse_max_degree,
        )
        coarse_problem = NetworkAlignmentProblem(
            ca.graph,
            cb.graph,
            proj.ell,
            fine.alpha,
            fine.beta,
            name=f"{problem.name}/level{lvl}",
        )
        # Inherit the squares structure by projection instead of the
        # O(Σ deg_A·deg_B) neighborhood-join rebuild: nnz never grows
        # down the hierarchy and the projection is one gather + dedup.
        coarse_problem._squares = project_squares(fine.squares, proj)
        levels.append(_Level(coarse_problem, proj, ca, cb))
        a_w, b_w = ca.edge_weights, cb.edge_weights
        _emit_level(bus, lvl, "coarsen", coarse_problem)
        if bus.active:
            bus.metrics.histogram(
                "repro_multilevel_shrink_factor"
            ).observe(shrink)
        if tracer is not None:
            # Coarsening = two heavy-edge matchings over A's and B's
            # half-edges + one segmented aggregation over L's edges;
            # recorded as its own traced "iteration" of the cycle.
            n_half = 2 * (fine.a_graph.m + fine.b_graph.m)
            tracer.uniform_loop(
                "coarsen_match", n_items=max(1, n_half),
                cost_per_item=3.0, bytes_per_item=24.0, random_frac=0.5,
            )
            tracer.uniform_loop(
                "project_ell", n_items=max(1, fine.ell.n_edges),
                cost_per_item=2.0, bytes_per_item=32.0, random_frac=0.5,
            )
            tracer.end_iteration()
    return levels


def _resolve_matcher(
    kind: str, parallel: ParallelConfig | None
) -> str | Matcher:
    """Apply ``parallel.matching_backend`` to kernel-capable kinds.

    The exact matchers have no backend kernels; they keep their string
    form (the backend directive targets the approximate family, it is
    not an error to combine it with an exact refine matcher).
    """
    backend = None if parallel is None else parallel.matching_backend
    if backend is not None and kind in KERNEL_KINDS:
        return make_matcher(kind, backend=backend)
    return kind


def _round_prior(
    problem: NetworkAlignmentProblem,
    g_vec: np.ndarray,
    matcher: str | Matcher,
    result: AlignmentResult | None,
) -> AlignmentResult:
    """Round the prior vector itself; keep it if it beats the refine.

    Guarantees the refine pass never loses the expanded coarse solution
    (refine is a *descent* in objective terms, not a gamble).  ``result``
    is ``None`` when no refine ran at this level — the coarse result's
    objective lives on the coarse problem and is not comparable here, so
    the prior rounding stands alone.
    """
    obj, wp, op, matching = round_heuristic(
        problem, g_vec, matcher=matcher, source="prior", iteration=0
    )
    if result is not None and obj <= result.objective:
        return result
    record = IterationRecord(
        iteration=0, objective=obj, weight_part=wp, overlap_part=op,
        upper_bound=float("nan"), source="prior", gamma=float("nan"),
    )
    return AlignmentResult(
        matching=matching,
        objective=obj,
        weight_part=wp,
        overlap_part=op,
        best_upper_bound=float("inf"),
        history=(result.history if result is not None else []) + [record],
        method=result.method if result is not None else "multilevel",
        params=result.params if result is not None else {},
    )


def _vcycle(
    problem: NetworkAlignmentProblem,
    config: MultilevelConfig,
    tracer: Any | None,
    bus,
    parallel: ParallelConfig | None,
) -> AlignmentResult:
    levels = _build_hierarchy(problem, config, tracer, bus)
    n_levels = len(levels)
    if bus.active:
        bus.metrics.counter("repro_multilevel_vcycles_total").inc()
        bus.metrics.gauge("repro_multilevel_levels").set(n_levels)

    # ---- coarsest solve ---------------------------------------------
    coarsest = levels[-1].problem
    flat = n_levels == 1  # degenerate cycle: the coarsest IS the finest
    _emit_level(bus, n_levels - 1, "solve", coarsest)
    if config.coarsest_method == "bp":
        result = belief_propagation_align(
            coarsest,
            BPConfig(
                n_iter=config.coarsest_iters,
                gamma=config.gamma,
                batch=config.batch,
                matcher=config.coarsest_matcher,
                final_exact=flat and config.final_exact,
            ),
            tracer,
            parallel=parallel,
        )
    else:
        result = klau_align(
            coarsest,
            KlauConfig(
                n_iter=config.coarsest_iters,
                matcher=config.coarsest_matcher,
                final_exact=flat and config.final_exact,
            ),
            tracer,
        )

    # ---- expand + refine, coarsest → finest -------------------------
    for k in range(n_levels - 1, 0, -1):
        level = levels[k]
        fine_problem = levels[k - 1].problem
        is_finest = k == 1
        coarse_x = result.matching.indicator(level.proj.ell.n_edges)
        prior = level.proj.prolong(coarse_x)
        g_vec = (
            fine_problem.alpha * fine_problem.weights
            + config.prior_scale * prior
        )
        _emit_level(bus, k - 1, "refine", fine_problem)
        if config.refine_iters > 0:
            refined = belief_propagation_align(
                fine_problem,
                BPConfig(
                    n_iter=config.refine_iters,
                    gamma=config.gamma,
                    batch=config.batch,
                    matcher=config.refine_matcher,
                    final_exact=is_finest and config.final_exact,
                ),
                tracer,
                parallel=parallel,
                init_messages=(g_vec, g_vec),
            )
            if bus.active:
                bus.metrics.counter(
                    "repro_multilevel_refine_iterations_total"
                ).inc(config.refine_iters)
        else:
            refined = None  # no refine: the prior rounding below decides
        # The prior vector is tie-heavy by construction (α·w plus a 0/1
        # indicator), which degenerates the exact matcher's augmenting
        # search; the ½-approximation family handles ties in linear time,
        # and the refine pass's own final exact rounding already polishes
        # a well-conditioned BP vector.
        result = _round_prior(
            fine_problem, g_vec,
            _resolve_matcher(config.refine_matcher, parallel), refined,
        )

    return AlignmentResult(
        matching=result.matching,
        objective=result.objective,
        weight_part=result.weight_part,
        overlap_part=result.overlap_part,
        best_upper_bound=float("inf"),
        history=result.history,
        method=(
            f"multilevel[{n_levels}x{config.coarsest_method},"
            f"{config.refine_matcher}]"
        ),
        params={
            **config.to_dict(),
            "levels": n_levels,
            "alpha": problem.alpha,
            "beta": problem.beta,
        },
    )
