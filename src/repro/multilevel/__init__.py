"""Multilevel coarsen–align–refine pipeline (V-cycle) for network alignment.

Public surface:

* :class:`~repro.multilevel.coarsen.CoarseningMap`,
  :func:`~repro.multilevel.coarsen.coarsen_graph`,
  :func:`~repro.multilevel.coarsen.project_ell` — the coarsening layer;
* :class:`~repro.multilevel.vcycle.MultilevelConfig`,
  :func:`~repro.multilevel.vcycle.multilevel_align` — the V-cycle driver.

See ``docs/multilevel.md`` for the cycle diagram and when to prefer a
multilevel run over a flat solver.
"""

from repro.multilevel.coarsen import (
    CoarsenedGraph,
    CoarseningMap,
    EllProjection,
    coarsen_graph,
    project_ell,
    project_squares,
)
from repro.multilevel.vcycle import MultilevelConfig, multilevel_align

__all__ = [
    "CoarsenedGraph",
    "CoarseningMap",
    "EllProjection",
    "MultilevelConfig",
    "coarsen_graph",
    "multilevel_align",
    "project_ell",
    "project_squares",
]
