"""Warm solver state and the seeding that maps it onto an edited problem.

:class:`WarmState` captures everything a converged BP run knows — the
message vectors **y**, **z**, the square messages **S**:sup:`(k)`, the
matching it returned — *keyed by the L edges that indexed them*, so the
state survives re-numbering when the problem is edited.
:func:`seed_from_warm` transfers a warm state onto a (possibly
perturbed) problem: messages on surviving edges and squares carry over
verbatim, new structure starts cold, and the set of L edges whose local
computation actually changed becomes the initial *active set* of
incremental BP (:func:`repro.core.bp.belief_propagation_align` with
``warm_from=``).

When the edit is empty the seeding detects it (``unchanged=True``) and
the solver returns the prior matching bit-identically without iterating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.problem import NetworkAlignmentProblem
from repro.errors import ValidationError
from repro.sparse.csr import CSRMatrix

__all__ = ["WarmState", "seed_from_warm"]


@dataclass
class WarmState:
    """A converged solver state, keyed by L edges rather than edge ids.

    Attributes:
        n_a, n_b: Vertex-set sizes of the problem the state came from.
        edge_a, edge_b: The L edges (sorted by ``(a, b)``) the message
            vectors are indexed by.
        weights: The similarity weights **w** at capture time (used to
            detect reweighted edges when seeding).
        y, z: The converged message vectors (length ``m``).
        sk: The square messages **S**:sup:`(k)` (length ``nnz(S)``),
            stored alongside the structure that indexes them.
        s_indptr, s_indices: The CSR structure of **S** at capture time.
        mate_a: A-side mate array of the returned matching.
        objective: The returned objective (provenance only).
        method: Solver that produced the state (``"bp"``).
        digest: Optional problem digest for lineage bookkeeping.
    """

    n_a: int
    n_b: int
    edge_a: np.ndarray
    edge_b: np.ndarray
    weights: np.ndarray
    y: np.ndarray
    z: np.ndarray
    sk: np.ndarray
    s_indptr: np.ndarray
    s_indices: np.ndarray
    mate_a: np.ndarray
    objective: float
    method: str = "bp"
    digest: str | None = None

    def __post_init__(self) -> None:
        m = len(self.edge_a)
        if not (len(self.edge_b) == len(self.weights) == len(self.y)
                == len(self.z) == m):
            raise ValidationError("warm state edge arrays disagree on m")
        if len(self.s_indptr) != m + 1:
            raise ValidationError("warm state S structure disagrees on m")
        if len(self.sk) != len(self.s_indices):
            raise ValidationError("warm state sk does not match nnz(S)")

    @property
    def n_edges(self) -> int:
        """``m``, the number of L edges the state is indexed by."""
        return len(self.edge_a)

    @classmethod
    def from_result(
        cls,
        problem: NetworkAlignmentProblem,
        result: Any,
        digest: str | None = None,
    ) -> "WarmState":
        """Capture a warm state from an :class:`AlignmentResult`.

        Args:
            problem: The problem ``result`` was solved on.
            result: The result; must carry ``solver_state`` (run the
                solver with ``keep_state=True``).
            digest: Optional problem digest to record as lineage.
        """
        state = getattr(result, "solver_state", None)
        if not state:
            raise ValidationError(
                "result carries no solver state; run align() with "
                "keep_state=True to capture one"
            )
        s_mat = problem.squares
        return cls(
            n_a=problem.ell.n_a,
            n_b=problem.ell.n_b,
            edge_a=problem.ell.edge_a.copy(),
            edge_b=problem.ell.edge_b.copy(),
            weights=problem.ell.weights.copy(),
            y=np.asarray(state["y"], dtype=np.float64).copy(),
            z=np.asarray(state["z"], dtype=np.float64).copy(),
            sk=np.asarray(state["sk"], dtype=np.float64).copy(),
            s_indptr=s_mat.indptr.copy(),
            s_indices=s_mat.indices.copy(),
            mate_a=result.matching.mate_a.copy(),
            objective=float(result.objective),
            method="bp",
            digest=digest,
        )

    @classmethod
    def from_checkpoint(
        cls, problem: NetworkAlignmentProblem, checkpoint: Any
    ) -> "WarmState":
        """Capture a warm state from a BP :class:`SolverCheckpoint`.

        The checkpoint's tracker snapshot supplies the matching; its
        ``y``/``z``/``sk`` arrays supply the messages.
        """
        if checkpoint.method != "bp":
            raise ValidationError(
                f"warm realignment needs a 'bp' checkpoint, got "
                f"{checkpoint.method!r}"
            )
        state = checkpoint.state
        tracker = state.get("tracker", {})
        matching = tracker.get("best_matching")
        if matching is None:
            raise ValidationError(
                "checkpoint has no rounded matching to warm-start from"
            )
        s_mat = problem.squares
        return cls(
            n_a=problem.ell.n_a,
            n_b=problem.ell.n_b,
            edge_a=problem.ell.edge_a.copy(),
            edge_b=problem.ell.edge_b.copy(),
            weights=problem.ell.weights.copy(),
            y=np.asarray(state["y"], dtype=np.float64).copy(),
            z=np.asarray(state["z"], dtype=np.float64).copy(),
            sk=np.asarray(state["sk"], dtype=np.float64).copy(),
            s_indptr=s_mat.indptr.copy(),
            s_indices=s_mat.indices.copy(),
            mate_a=matching.mate_a.copy(),
            objective=float(tracker.get("best_objective", float("-inf"))),
            method="bp",
            digest=None,
        )

    def save(self, path: str) -> None:
        """Persist to an ``.npz`` file (inverse of :meth:`load`)."""
        np.savez_compressed(
            path,
            n_a=self.n_a, n_b=self.n_b,
            edge_a=self.edge_a, edge_b=self.edge_b, weights=self.weights,
            y=self.y, z=self.z, sk=self.sk,
            s_indptr=self.s_indptr, s_indices=self.s_indices,
            mate_a=self.mate_a,
            objective=self.objective,
            method=np.array(self.method),
            digest=np.array(self.digest if self.digest is not None else ""),
        )

    @classmethod
    def load(cls, path: str) -> "WarmState":
        """Load a state persisted by :meth:`save`."""
        with np.load(path) as npz:
            digest = str(npz["digest"])
            return cls(
                n_a=int(npz["n_a"]), n_b=int(npz["n_b"]),
                edge_a=npz["edge_a"], edge_b=npz["edge_b"],
                weights=npz["weights"],
                y=npz["y"], z=npz["z"], sk=npz["sk"],
                s_indptr=npz["s_indptr"], s_indices=npz["s_indices"],
                mate_a=npz["mate_a"],
                objective=float(npz["objective"]),
                method=str(npz["method"]),
                digest=digest or None,
            )


@dataclass(frozen=True)
class _Seed:
    """Output of :func:`seed_from_warm` (internal to the BP warm path)."""

    y: np.ndarray
    z: np.ndarray
    sk: np.ndarray
    active: np.ndarray
    unchanged: bool
    carried_edges: int
    carried_squares: int


def seed_from_warm(
    problem: NetworkAlignmentProblem,
    warm: WarmState,
    s_mat: CSRMatrix,
) -> _Seed:
    """Map a warm state onto ``problem``, computing the active seed.

    Messages transfer by L-edge key (surviving edges keep their values,
    new edges start at zero) and square messages by square key.  The
    returned active set contains every L edge whose next-iteration
    computation differs from the converged fixed point: inserted or
    reweighted edges, edges sharing an othermax group with an inserted
    or deleted edge, and edges whose **S** row gained or lost squares.

    Args:
        problem: The (edited) problem to seed.
        warm: The prior converged state.
        s_mat: ``problem.squares`` (passed in so the caller controls
            when it is built).

    Raises:
        ValidationError: If the vertex sets disagree (deltas never
            resize them, so a mismatch means the state belongs to a
            different problem family).
    """
    ell = problem.ell
    if warm.n_a != ell.n_a or warm.n_b != ell.n_b:
        raise ValidationError(
            "warm state vertex sets do not match the problem "
            f"({warm.n_a}/{ell.n_a}, {warm.n_b}/{ell.n_b})"
        )
    m_new = ell.n_edges
    m_old = warm.n_edges
    new_keys = ell.edge_a * ell.n_b + ell.edge_b
    old_keys = warm.edge_a * ell.n_b + warm.edge_b

    # --- edge-level transfer -----------------------------------------
    pos = np.searchsorted(new_keys, old_keys)
    pos_c = np.minimum(pos, max(m_new - 1, 0))
    hit = ((pos < m_new) & (new_keys[pos_c] == old_keys)) if m_new \
        else np.zeros(m_old, dtype=bool)
    old_to_new = np.where(hit, pos_c, -1).astype(np.int64)
    y0 = np.zeros(m_new)
    z0 = np.zeros(m_new)
    surviving_new = old_to_new[hit]
    y0[surviving_new] = warm.y[hit]
    z0[surviving_new] = warm.z[hit]

    seeded = np.zeros(m_new, dtype=bool)
    seeded[surviving_new] = True
    inserted = np.flatnonzero(~seeded)
    deleted_old = np.flatnonzero(~hit)
    reweighted = surviving_new[
        warm.weights[hit] != ell.weights[surviving_new]
    ]

    # --- square-level transfer ---------------------------------------
    nnz_new = s_mat.nnz
    sk0 = np.zeros(nnz_new)
    rows_old = np.repeat(
        np.arange(m_old, dtype=np.int64), np.diff(warm.s_indptr)
    )
    old_r = old_to_new[rows_old]
    old_c = old_to_new[warm.s_indices]
    valid = (old_r >= 0) & (old_c >= 0)
    # CSR with sorted columns ⇒ (row, col) keys are strictly increasing,
    # so square values join by searchsorted just like edge values.
    new_sq_keys = s_mat.row_of_nonzero() * m_new + s_mat.indices
    probe = old_r[valid] * m_new + old_c[valid]
    spos = np.searchsorted(new_sq_keys, probe)
    spos_c = np.minimum(spos, max(nnz_new - 1, 0))
    shit = ((spos < nnz_new) & (new_sq_keys[spos_c] == probe)) if nnz_new \
        else np.zeros(len(probe), dtype=bool)
    sk0[spos_c[shit]] = warm.sk[valid][shit]
    sk_seeded = np.zeros(nnz_new, dtype=bool)
    sk_seeded[spos_c[shit]] = True

    # --- active seed --------------------------------------------------
    marks = [inserted, reweighted]
    # Rows with unseeded squares (gained a square) and surviving rows of
    # vanished squares (lost one): their F-row sums change.
    if nnz_new:
        marks.append(np.unique(s_mat.row_of_nonzero()[~sk_seeded]))
    lost = valid.copy()
    lost[valid] = ~shit
    if lost.any():
        marks.append(np.unique(old_r[lost]))
    # Othermax groups touched by an inserted or deleted edge: every edge
    # sharing an A- or B-vertex with one sees a different competition.
    touched_a: list[np.ndarray] = []
    touched_b: list[np.ndarray] = []
    if len(inserted):
        touched_a.append(ell.edge_a[inserted])
        touched_b.append(ell.edge_b[inserted])
    if len(deleted_old):
        touched_a.append(warm.edge_a[deleted_old])
        touched_b.append(warm.edge_b[deleted_old])
    if touched_a:
        verts_a = np.unique(np.concatenate(touched_a))
        verts_b = np.unique(np.concatenate(touched_b))
        marks.append(np.flatnonzero(np.isin(ell.edge_a, verts_a)))
        marks.append(np.flatnonzero(np.isin(ell.edge_b, verts_b)))
    active = np.unique(np.concatenate(marks).astype(np.int64)) \
        if marks else np.empty(0, dtype=np.int64)

    unchanged = (
        m_new == m_old and len(active) == 0 and bool(hit.all())
        and bool(sk_seeded.all()) and nnz_new == len(warm.sk)
    )
    return _Seed(
        y=y0,
        z=z0,
        sk=sk0,
        active=active,
        unchanged=unchanged,
        carried_edges=int(hit.sum()),
        carried_squares=int(shit.sum()),
    )
