"""Delta updates on alignment problems (the edit-script half of realignment).

A production alignment service sees *drifting* inputs — ontologies gain
terms, binaries gain functions — not a stream of unrelated one-shot
problems.  :class:`ProblemDelta` is a validated edit script against a
:class:`~repro.core.problem.NetworkAlignmentProblem` (L-edge inserts /
deletes / reweights plus edge edits on the underlying graphs A and B),
and :func:`apply_delta` applies one, returning the perturbed problem
together with a :class:`DeltaReport` describing exactly which L edges
and L vertices the edit touched.

The expensive derived structure — the squares matrix **S** — is
maintained *incrementally*: rows whose square set cannot have changed
keep their old columns (remapped through the monotone old→new edge-id
map), and only the dirty rows (edges inserted, partners of inserts,
edges incident on an edited graph endpoint) are re-expanded via
:func:`~repro.core.squares.squares_coo`.  The result is bit-identical
to a from-scratch :func:`~repro.core.squares.build_squares` on the
perturbed problem; ``tests/test_incremental.py`` holds that property
under randomized edit scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.core.problem import NetworkAlignmentProblem
from repro.core.squares import squares_coo
from repro.errors import ValidationError
from repro.graph.graph import Graph
from repro.observe import get_bus
from repro.sparse.bipartite import BipartiteGraph
from repro.sparse.build import coo_to_csr
from repro.sparse.csr import CSRMatrix

__all__ = ["DeltaReport", "ProblemDelta", "apply_delta"]


def _empty_pairs() -> np.ndarray:
    return np.empty((0, 2), dtype=np.int64)


def _empty_f64() -> np.ndarray:
    return np.empty(0, dtype=np.float64)


def _as_pairs(rows: Any, what: str) -> np.ndarray:
    """Coerce an iterable of ``(u, v)`` pairs to an ``(k, 2)`` array."""
    arr = np.asarray(list(rows) if not isinstance(rows, np.ndarray) else rows,
                     dtype=np.int64)
    if arr.size == 0:
        return _empty_pairs()
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValidationError(f"{what} must be a sequence of (u, v) pairs")
    return arr


@dataclass(frozen=True)
class ProblemDelta:
    """A validated edit script against one alignment problem.

    All members are arrays; use :meth:`build` to construct from plain
    Python lists and :meth:`from_dict` / :meth:`to_dict` for the JSON
    form the CLI ``realign`` subcommand reads.  Vertex counts are fixed
    — deltas edit edges and weights, never add or remove vertices.

    Attributes:
        l_add: ``(k, 2)`` L edges ``(a, b)`` to insert.
        l_add_w: Length-``k`` weights of the inserted L edges.
        l_drop: ``(k, 2)`` existing L edges to delete.
        l_reweight: ``(k, 2)`` existing L edges whose weight changes.
        l_reweight_w: The new weights for ``l_reweight``.
        a_add: ``(k, 2)`` edges to insert into graph A.
        a_drop: ``(k, 2)`` existing A edges to delete.
        b_add: ``(k, 2)`` edges to insert into graph B.
        b_drop: ``(k, 2)`` existing B edges to delete.
    """

    l_add: np.ndarray = field(default_factory=_empty_pairs)
    l_add_w: np.ndarray = field(default_factory=_empty_f64)
    l_drop: np.ndarray = field(default_factory=_empty_pairs)
    l_reweight: np.ndarray = field(default_factory=_empty_pairs)
    l_reweight_w: np.ndarray = field(default_factory=_empty_f64)
    a_add: np.ndarray = field(default_factory=_empty_pairs)
    a_drop: np.ndarray = field(default_factory=_empty_pairs)
    b_add: np.ndarray = field(default_factory=_empty_pairs)
    b_drop: np.ndarray = field(default_factory=_empty_pairs)

    def __post_init__(self) -> None:
        for name in ("l_add", "l_drop", "l_reweight", "a_add", "a_drop",
                     "b_add", "b_drop"):
            object.__setattr__(self, name, _as_pairs(getattr(self, name),
                                                     name))
        for name, pairs in (("l_add_w", self.l_add),
                            ("l_reweight_w", self.l_reweight)):
            w = np.asarray(getattr(self, name), dtype=np.float64).ravel()
            if len(w) != len(pairs):
                raise ValidationError(
                    f"{name} must carry one weight per edited edge "
                    f"({len(w)} weights for {len(pairs)} edges)"
                )
            if len(w) and not np.isfinite(w).all():
                raise ValidationError(f"{name} weights must be finite")
            object.__setattr__(self, name, w)

    @classmethod
    def build(
        cls,
        *,
        l_add: Iterable[Sequence[float]] = (),
        l_drop: Iterable[Sequence[int]] = (),
        l_reweight: Iterable[Sequence[float]] = (),
        a_add: Iterable[Sequence[int]] = (),
        a_drop: Iterable[Sequence[int]] = (),
        b_add: Iterable[Sequence[int]] = (),
        b_drop: Iterable[Sequence[int]] = (),
    ) -> "ProblemDelta":
        """Build a delta from plain triples/pairs.

        ``l_add`` and ``l_reweight`` take ``(a, b, weight)`` triples;
        everything else takes ``(u, v)`` pairs.
        """
        def split(rows: Iterable[Sequence[float]], what: str):
            rows = [tuple(r) for r in rows]
            if any(len(r) != 3 for r in rows):
                raise ValidationError(
                    f"{what} entries must be (a, b, weight) triples"
                )
            pairs = [(int(r[0]), int(r[1])) for r in rows]
            ws = [float(r[2]) for r in rows]
            return pairs, ws

        add_pairs, add_w = split(l_add, "l_add")
        rw_pairs, rw_w = split(l_reweight, "l_reweight")
        return cls(
            l_add=_as_pairs(add_pairs, "l_add"),
            l_add_w=np.asarray(add_w, dtype=np.float64),
            l_drop=_as_pairs(list(l_drop), "l_drop"),
            l_reweight=_as_pairs(rw_pairs, "l_reweight"),
            l_reweight_w=np.asarray(rw_w, dtype=np.float64),
            a_add=_as_pairs(list(a_add), "a_add"),
            a_drop=_as_pairs(list(a_drop), "a_drop"),
            b_add=_as_pairs(list(b_add), "b_add"),
            b_drop=_as_pairs(list(b_drop), "b_drop"),
        )

    @property
    def structural(self) -> bool:
        """Whether the delta changes any structure (vs. weights only)."""
        return bool(
            len(self.l_add) or len(self.l_drop) or len(self.a_add)
            or len(self.a_drop) or len(self.b_add) or len(self.b_drop)
        )

    @property
    def empty(self) -> bool:
        """Whether the delta edits nothing at all."""
        return not self.structural and len(self.l_reweight) == 0

    def to_dict(self) -> dict[str, Any]:
        """The JSON form (inverse of :meth:`from_dict`)."""
        return {
            "l_add": [
                [int(a), int(b), float(w)] for (a, b), w in
                zip(self.l_add.tolist(), self.l_add_w.tolist())
            ],
            "l_drop": self.l_drop.tolist(),
            "l_reweight": [
                [int(a), int(b), float(w)] for (a, b), w in
                zip(self.l_reweight.tolist(), self.l_reweight_w.tolist())
            ],
            "a_add": self.a_add.tolist(),
            "a_drop": self.a_drop.tolist(),
            "b_add": self.b_add.tolist(),
            "b_drop": self.b_drop.tolist(),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ProblemDelta":
        """Decode the JSON form produced by :meth:`to_dict`."""
        if not isinstance(doc, Mapping):
            raise ValidationError("delta document must be a JSON object")
        known = {"l_add", "l_drop", "l_reweight", "a_add", "a_drop",
                 "b_add", "b_drop"}
        unknown = set(doc) - known
        if unknown:
            raise ValidationError(
                f"unknown delta fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls.build(
            l_add=doc.get("l_add", ()),
            l_drop=doc.get("l_drop", ()),
            l_reweight=doc.get("l_reweight", ()),
            a_add=doc.get("a_add", ()),
            a_drop=doc.get("a_drop", ()),
            b_add=doc.get("b_add", ()),
            b_drop=doc.get("b_drop", ()),
        )

    def summary(self) -> str:
        """One-line human-readable description of the edit volume."""
        return (
            f"delta(L +{len(self.l_add)} -{len(self.l_drop)} "
            f"~{len(self.l_reweight)}, "
            f"A +{len(self.a_add)} -{len(self.a_drop)}, "
            f"B +{len(self.b_add)} -{len(self.b_drop)})"
        )


@dataclass(frozen=True)
class DeltaReport:
    """What one :func:`apply_delta` touched.

    Attributes:
        structural: Whether L or A/B structure changed (vs. weights only).
        n_edges_old, n_edges_new: |E_L| before and after the edit.
        old_to_new: Length ``n_edges_old`` map from old edge ids to new
            (``-1`` where the edge was deleted; monotone on survivors).
        touched_edges: Sorted new edge ids whose objective context
            changed — inserted edges, partners gaining or losing a
            square, reweighted edges.  This is the seed of incremental
            BP's active set.
        touched_a, touched_b: The L vertices (A side / B side) incident
            on ``touched_edges``.
        rows_recomputed: Squares rows re-expanded (0 when **S** was not
            cached or the delta was weights-only).
        squares_maintained: Whether the cached **S** was carried over
            (shared or incrementally updated) rather than discarded.
    """

    structural: bool
    n_edges_old: int
    n_edges_new: int
    old_to_new: np.ndarray
    touched_edges: np.ndarray
    touched_a: np.ndarray
    touched_b: np.ndarray
    rows_recomputed: int
    squares_maintained: bool

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"delta touched {len(self.touched_edges)} of "
            f"{self.n_edges_new} L edges "
            f"({len(self.touched_a)}+{len(self.touched_b)} vertices); "
            f"recomputed {self.rows_recomputed} squares rows"
        )


def _check_unique(keys: np.ndarray, what: str) -> None:
    if len(np.unique(keys)) != len(keys):
        raise ValidationError(f"{what} contains duplicate edges")


def _edit_graph(graph: Graph, add: np.ndarray, drop: np.ndarray,
                label: str) -> Graph:
    """Apply edge inserts/deletes to one undirected graph (strict)."""
    if not len(add) and not len(drop):
        return graph
    n = graph.n

    def norm_keys(pairs: np.ndarray, what: str) -> np.ndarray:
        if not len(pairs):
            return np.empty(0, dtype=np.int64)
        if pairs.min() < 0 or pairs.max() >= n:
            raise ValidationError(f"{what}: vertex id out of range")
        u = np.minimum(pairs[:, 0], pairs[:, 1])
        v = np.maximum(pairs[:, 0], pairs[:, 1])
        if np.any(u == v):
            raise ValidationError(f"{what}: self-loops are not allowed")
        keys = u * n + v
        _check_unique(keys, what)
        return keys

    keys = graph.edge_u * n + graph.edge_v
    add_k = norm_keys(add, f"{label}.add")
    drop_k = norm_keys(drop, f"{label}.drop")
    if len(drop_k) and not np.isin(drop_k, keys).all():
        raise ValidationError(f"{label}.drop names edges not in the graph")
    if len(add_k) and np.isin(add_k, keys).any():
        raise ValidationError(f"{label}.add names edges already present")
    if len(add_k) and len(drop_k) and np.isin(add_k, drop_k).any():
        raise ValidationError(
            f"{label}: the same edge is both added and dropped"
        )
    kept = keys[~np.isin(keys, drop_k)]
    merged = np.sort(np.concatenate([kept, add_k]))
    return Graph(n, merged // n, merged % n)


def _edit_l(
    ell: BipartiteGraph, delta: ProblemDelta
) -> tuple[BipartiteGraph, np.ndarray, np.ndarray, np.ndarray]:
    """Apply the L edits; returns the new L and the id maps.

    Returns ``(ell_new, old_to_new, added_new_ids, reweighted_new_ids)``.
    """
    n_a, n_b = ell.n_a, ell.n_b
    keys = ell.edge_a * n_b + ell.edge_b
    m_old = ell.n_edges

    def pair_keys(pairs: np.ndarray, what: str) -> np.ndarray:
        if not len(pairs):
            return np.empty(0, dtype=np.int64)
        a, b = pairs[:, 0], pairs[:, 1]
        if a.min() < 0 or a.max() >= n_a or b.min() < 0 or b.max() >= n_b:
            raise ValidationError(f"{what}: endpoint out of range")
        k = a * n_b + b
        _check_unique(k, what)
        return k

    add_k = pair_keys(delta.l_add, "l_add")
    drop_k = pair_keys(delta.l_drop, "l_drop")
    rw_k = pair_keys(delta.l_reweight, "l_reweight")
    for k_arr, what in ((drop_k, "l_drop"), (rw_k, "l_reweight")):
        if len(k_arr) and not np.isin(k_arr, keys).all():
            raise ValidationError(f"{what} names edges not in L")
    if len(add_k) and np.isin(add_k, keys).any():
        raise ValidationError(
            "l_add names edges already in L (use l_reweight)"
        )
    if len(rw_k) and len(drop_k) and np.isin(rw_k, drop_k).any():
        raise ValidationError("the same L edge is reweighted and dropped")
    if len(add_k) and len(drop_k) and np.isin(add_k, drop_k).any():
        raise ValidationError("the same L edge is added and dropped")

    w = ell.weights.copy()
    if len(rw_k):
        w[np.searchsorted(keys, rw_k)] = delta.l_reweight_w
    keep = np.ones(m_old, dtype=bool)
    if len(drop_k):
        keep[np.searchsorted(keys, drop_k)] = False
    merged_keys = np.concatenate([keys[keep], add_k])
    merged_w = np.concatenate([w[keep], delta.l_add_w])
    order = np.argsort(merged_keys, kind="stable")
    new_keys = merged_keys[order]
    new_w = merged_w[order]
    ell_new = BipartiteGraph(n_a, n_b, new_keys // n_b, new_keys % n_b,
                             new_w)
    old_to_new = np.full(m_old, -1, dtype=np.int64)
    old_to_new[keep] = np.searchsorted(new_keys, keys[keep])
    added_new = np.searchsorted(new_keys, np.sort(add_k))
    rw_new = (np.searchsorted(new_keys, np.sort(rw_k))
              if len(rw_k) else np.empty(0, dtype=np.int64))
    return ell_new, old_to_new, added_new, rw_new


def _update_squares(
    s_old: CSRMatrix,
    old_to_new: np.ndarray,
    dirty: np.ndarray,
    a_new: Graph,
    b_new: Graph,
    ell_new: BipartiteGraph,
) -> CSRMatrix:
    """Incrementally maintain **S** under an edit.

    Clean rows keep their old column lists remapped through
    ``old_to_new`` (deleted columns drop out; the map is monotone on
    survivors, so within-row sortedness is preserved); the ``dirty``
    rows are re-expanded from scratch on the perturbed graphs.
    """
    m_new = ell_new.n_edges
    dirty_mask = np.zeros(m_new, dtype=bool)
    dirty_mask[dirty] = True
    rows_old = s_old.row_of_nonzero()
    new_r = old_to_new[rows_old]
    new_c = old_to_new[s_old.indices]
    idx = np.flatnonzero((new_r >= 0) & (new_c >= 0))
    idx = idx[~dirty_mask[new_r[idx]]]
    d_rows, d_cols = squares_coo(a_new, b_new, ell_new, dirty)
    rows = np.concatenate([new_r[idx], d_rows])
    cols = np.concatenate([new_c[idx], d_cols])
    # Clean and dirty rows are disjoint and each (e, f) pair is produced
    # once, so "error" dedup doubles as a structural sanity check.
    return coo_to_csr(rows, cols, 1.0, (m_new, m_new), dedup="error")


def apply_delta(
    problem: NetworkAlignmentProblem, delta: ProblemDelta
) -> tuple[NetworkAlignmentProblem, DeltaReport]:
    """Apply an edit script, maintaining cached structure incrementally.

    Args:
        problem: The instance to perturb (left untouched).
        delta: The edit script; all edits are validated strictly
            (dropping an absent edge or inserting a present one raises).

    Returns:
        ``(new_problem, report)``.  When the delta is weights-only, the
        new problem *shares* the old one's squares matrix and transpose
        permutation; when it is structural and the old problem had
        **S** cached, the new **S** is maintained incrementally (clean
        rows remapped, dirty rows re-expanded) — bit-identical to a
        from-scratch build.

    Raises:
        ValidationError: On any inconsistent edit (out-of-range ids,
            duplicate or conflicting edits, absent/present mismatches).
    """
    ell = problem.ell
    m_old = ell.n_edges

    if not delta.structural:
        # Weights-only: all structure (graphs, L sort order, S) is
        # shared; only the weight vector is replaced.
        ell_new, _, _, rw_new = _edit_l(ell, delta)
        new_problem = NetworkAlignmentProblem(
            problem.a_graph, problem.b_graph,
            ell.with_weights(ell_new.weights),
            problem.alpha, problem.beta, problem.name,
        )
        new_problem._squares = problem._squares
        new_problem._strans = problem._strans
        report = DeltaReport(
            structural=False,
            n_edges_old=m_old,
            n_edges_new=m_old,
            old_to_new=np.arange(m_old, dtype=np.int64),
            touched_edges=rw_new,
            touched_a=np.unique(ell.edge_a[rw_new]),
            touched_b=np.unique(ell.edge_b[rw_new]),
            rows_recomputed=0,
            squares_maintained=problem._squares is not None,
        )
        _emit_delta(delta, report)
        return new_problem, report

    a_new = _edit_graph(problem.a_graph, delta.a_add, delta.a_drop, "a")
    b_new = _edit_graph(problem.b_graph, delta.b_add, delta.b_drop, "b")
    ell_new, old_to_new, added_new, rw_new = _edit_l(ell, delta)

    # Dirty rows: rows that can gain entries or whose expansion basis
    # changed.  (Rows that merely *lose* a deleted partner are handled
    # by the clean-row remap, which drops -1 columns.)
    marks = [added_new]
    if len(added_new):
        _, partners = squares_coo(a_new, b_new, ell_new, added_new)
        marks.append(partners)
    for graph, edge_a_or_b, adds, drops in (
        (a_new, ell_new.edge_a, delta.a_add, delta.a_drop),
        (b_new, ell_new.edge_b, delta.b_add, delta.b_drop),
    ):
        if len(adds) or len(drops):
            verts = np.unique(np.concatenate(
                [adds.ravel(), drops.ravel()]
            ).astype(np.int64))
            marks.append(np.flatnonzero(np.isin(edge_a_or_b, verts)))
    dirty = np.unique(np.concatenate(marks).astype(np.int64)) if marks \
        else np.empty(0, dtype=np.int64)

    new_problem = NetworkAlignmentProblem(
        a_new, b_new, ell_new, problem.alpha, problem.beta, problem.name
    )
    rows_recomputed = 0
    maintained = False
    if problem._squares is not None:
        new_problem._squares = _update_squares(
            problem._squares, old_to_new, dirty, a_new, b_new, ell_new
        )
        rows_recomputed = len(dirty)
        maintained = True

    # Touched edges (BP active seed): dirty rows, reweighted edges, and
    # surviving partners of deleted edges (their rows lost an entry).
    touched = [dirty, rw_new]
    dropped_old = np.flatnonzero(old_to_new < 0)
    if len(dropped_old):
        _, old_partners = squares_coo(
            problem.a_graph, problem.b_graph, ell, dropped_old
        )
        mapped = old_to_new[old_partners]
        touched.append(mapped[mapped >= 0])
    touched_edges = np.unique(np.concatenate(touched).astype(np.int64))
    report = DeltaReport(
        structural=True,
        n_edges_old=m_old,
        n_edges_new=ell_new.n_edges,
        old_to_new=old_to_new,
        touched_edges=touched_edges,
        touched_a=np.unique(ell_new.edge_a[touched_edges]),
        touched_b=np.unique(ell_new.edge_b[touched_edges]),
        rows_recomputed=rows_recomputed,
        squares_maintained=maintained,
    )
    _emit_delta(delta, report)
    return new_problem, report


def _emit_delta(delta: ProblemDelta, report: DeltaReport) -> None:
    """Publish one ``delta_applied`` event (when the bus has sinks)."""
    bus = get_bus()
    if not bus.active:
        return
    bus.emit(
        "delta_applied",
        structural=report.structural,
        l_added=len(delta.l_add),
        l_dropped=len(delta.l_drop),
        l_reweighted=len(delta.l_reweight),
        graph_edited=(len(delta.a_add) + len(delta.a_drop)
                      + len(delta.b_add) + len(delta.b_drop)),
        touched_edges=len(report.touched_edges),
        rows_recomputed=report.rows_recomputed,
        n_edges_old=report.n_edges_old,
        n_edges_new=report.n_edges_new,
    )
    bus.metrics.counter("repro_deltas_applied_total").inc()
