"""Incremental realignment: delta updates + neighborhood-scoped BP.

A production alignment service sees drifting inputs, not one-shot
problems.  This package makes re-solving after a small edit cheap:

* :class:`ProblemDelta` / :func:`apply_delta` — validated edit scripts
  (L-edge and graph-edge insert/delete, weight changes) that return a
  perturbed problem plus a :class:`DeltaReport` of what was touched,
  maintaining the cached squares matrix incrementally.
* :class:`WarmState` — a converged solver state keyed by L edges, so it
  survives edge renumbering across edits.
* :func:`realign` — apply a delta and re-run BP with ``warm_from=``,
  restricting per-iteration work to the perturbed neighborhood.

See ``docs/incremental.md`` for the executable walkthrough.
"""

from repro.incremental.delta import DeltaReport, ProblemDelta, apply_delta
from repro.incremental.engine import realign
from repro.incremental.state import WarmState, seed_from_warm

__all__ = [
    "DeltaReport",
    "ProblemDelta",
    "WarmState",
    "apply_delta",
    "realign",
    "seed_from_warm",
]
