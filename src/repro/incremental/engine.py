"""The one-call realignment helper: edit, seed, re-propagate, round.

:func:`realign` strings the incremental pieces together — apply a
:class:`~repro.incremental.delta.ProblemDelta`, then run the registered
solver with ``warm_from=`` so BP re-propagates only around the
perturbation.  The CLI ``realign`` subcommand and the serving layer's
``warm_from=<job_id>`` path are thin wrappers over the same sequence.
"""

from __future__ import annotations

from typing import Any

from repro.core.problem import NetworkAlignmentProblem
from repro.core.result import AlignmentResult
from repro.incremental.delta import DeltaReport, ProblemDelta, apply_delta
from repro.incremental.state import WarmState

__all__ = ["realign"]


def realign(
    problem: NetworkAlignmentProblem,
    delta: ProblemDelta,
    warm: WarmState,
    *,
    method: str = "bp",
    config: Any = None,
    keep_state: bool = True,
) -> tuple[NetworkAlignmentProblem, AlignmentResult, DeltaReport]:
    """Apply ``delta`` and re-align warm from ``warm``.

    Args:
        problem: The previously solved instance (left untouched).
        delta: The edit script to apply.
        warm: Converged state of the previous solve (capture it via
            ``align(..., keep_state=True)`` then
            :meth:`WarmState.from_result`).
        method: Registered solver with warm support (``"bp"``).
        config: Solver config (dataclass, mapping, or ``None``).
        keep_state: Capture the *new* final state on the result so the
            next realignment can chain from it.

    Returns:
        ``(new_problem, result, report)`` — the edited problem, the
        warm alignment result, and the delta's touch report.
    """
    from repro.registry import align

    new_problem, report = apply_delta(problem, delta)
    result = align(new_problem, method=method, config=config,
                   warm_from=warm, keep_state=keep_state)
    return new_problem, result, report
