"""The unified solver entry point: ``repro.align(problem, method=...)``.

Every alignment method the library implements — BP, Klau's MR, the
IsoRank baseline, and the multilevel V-cycle — registers a
:class:`SolverSpec` mapping its method string to its config class and
solve function.  :func:`align` is then one call for all of them:

>>> import repro
>>> result = repro.align(problem, method="bp")                # doctest: +SKIP
>>> result = repro.align(problem, method="multilevel",        # doctest: +SKIP
...                      config={"n_levels": 3, "refine_iters": 5})

``config`` accepts the method's config dataclass, a plain mapping (fed
through the config's ``from_dict``, so JSON round-trips), or ``None``
for defaults.  ``parallel`` (a :class:`repro.accel.ParallelConfig`) and
``trace`` (an :class:`repro.machine.trace.AlgorithmTracer`) forward to
methods that support them and raise :class:`ConfigurationError` on ones
that do not — silently dropping a requested backend would misreport
benchmarks.

The registry is intentionally open: downstream code can
``register_solver`` its own spec and dispatch through the same facade
(and through :func:`repro.accel.serve.solve_many`, which resolves
methods here too).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.accel.config import ParallelConfig
from repro.core.bp import BPConfig, belief_propagation_align
from repro.core.isorank import IsoRankConfig, isorank_align
from repro.core.klau import KlauConfig, klau_align
from repro.core.problem import NetworkAlignmentProblem
from repro.core.result import AlignmentResult
from repro.errors import ConfigurationError
from repro.multilevel import MultilevelConfig, multilevel_align

__all__ = [
    "SolverSpec",
    "align",
    "available_methods",
    "canonical_config",
    "get_solver",
    "register_solver",
]


@dataclass(frozen=True)
class SolverSpec:
    """One registered alignment method.

    ``solve`` is called as ``solve(problem, config, tracer=..,
    parallel=..)``; the two keyword arguments are only passed when the
    corresponding ``supports_*`` flag is set, so plain
    ``(problem, config)`` solvers register without adapters.
    """

    name: str
    config_cls: type
    solve: Callable[..., AlignmentResult]
    aliases: tuple[str, ...] = ()
    supports_parallel: bool = False
    supports_trace: bool = False
    #: The solver accepts the checkpoint/resume keyword group
    #: (``checkpoint_every``, ``checkpoint_store``, ``checkpoint_key``,
    #: ``resume``) and can warm-resume from a
    #: :class:`repro.resilience.SolverCheckpoint`.
    supports_checkpoint: bool = False
    #: The solver accepts ``warm_from`` (a
    #: :class:`repro.incremental.WarmState`) for incremental
    #: realignment, and ``keep_state`` to capture one.
    supports_warm: bool = False


_REGISTRY: dict[str, SolverSpec] = {}


def register_solver(spec: SolverSpec) -> SolverSpec:
    """Add a solver to the registry.

    Args:
        spec: The solver to register.

    Returns:
        The registered spec (so registration can be an expression).

    Raises:
        ConfigurationError: If the spec's name or any alias is taken.
    """
    for key in (spec.name, *spec.aliases):
        if key in _REGISTRY:
            raise ConfigurationError(
                f"solver name {key!r} is already registered"
            )
    for key in (spec.name, *spec.aliases):
        _REGISTRY[key] = spec
    return spec


def get_solver(method: str) -> SolverSpec:
    """Resolve a method string (name or alias) to its spec.

    Args:
        method: A registered solver name or alias.

    Returns:
        The matching :class:`SolverSpec`.

    Raises:
        ConfigurationError: If no solver is registered under ``method``.
    """
    spec = _REGISTRY.get(method)
    if spec is None:
        raise ConfigurationError(
            f"unknown method {method!r}; expected one of "
            f"{available_methods()} (aliases: "
            f"{sorted(k for k, s in _REGISTRY.items() if k != s.name)})"
        )
    return spec


def available_methods() -> list[str]:
    """List the primary method names.

    Returns:
        The registered solver names, sorted, aliases not repeated.
    """
    return sorted({spec.name for spec in _REGISTRY.values()})


def canonical_config(method: str, config: Any = None) -> dict[str, Any]:
    """Resolve any accepted config form to its canonical dict.

    The canonical form is the coerced config dataclass's ``to_dict()``:
    every field present, defaults filled in, JSON-ready scalars.  Two
    submissions that spell the same configuration differently (defaults
    omitted vs. written out, key order, a dataclass vs. a mapping)
    canonicalize identically — which is what provenance records and the
    serving layer's content-addressed cache keys
    (:func:`repro.serve.wire.cache_key`) rely on.

    Args:
        method: A registered solver name or alias.
        config: The method's config dataclass, a mapping fed through
            its ``from_dict``, or ``None`` for defaults.

    Returns:
        The canonical, JSON-serializable config dict.

    Raises:
        ConfigurationError: Unknown method, unknown config fields, or a
            config object of the wrong type.
    """
    spec = get_solver(method)
    return _coerce_config(spec, config).to_dict()


def _coerce_config(spec: SolverSpec, config: Any) -> Any:
    if config is None:
        return spec.config_cls()
    if isinstance(config, spec.config_cls):
        return config
    if isinstance(config, Mapping):
        return spec.config_cls.from_dict(config)
    raise ConfigurationError(
        f"method {spec.name!r} expects a {spec.config_cls.__name__} "
        f"(or a mapping for from_dict), got {type(config).__name__}"
    )


def align(
    problem: NetworkAlignmentProblem,
    method: str = "bp",
    config: Any = None,
    *,
    parallel: ParallelConfig | None = None,
    trace: Any | None = None,
    checkpoint_every: int = 0,
    checkpoint_store: Any | None = None,
    checkpoint_key: str = "",
    resume: bool = False,
    warm_from: Any | None = None,
    keep_state: bool = False,
) -> AlignmentResult:
    """Align ``problem`` with the named method.

    Args:
        problem: The alignment instance.
        method: ``"bp"``, ``"klau"`` (alias ``"mr"``), ``"isorank"``,
            or ``"multilevel"`` — or any name added via
            :func:`register_solver`.
        config: The method's config dataclass, a mapping
            (``from_dict``), or ``None`` for defaults.
        parallel: Execution backend for methods that fan work out (BP's
            batched rounding, the multilevel refine passes).
        trace: A work-trace collector
            (:class:`~repro.machine.trace.AlgorithmTracer`) for methods
            that record replayable machine traces.
        checkpoint_every: Snapshot the solver's iterate state into
            ``checkpoint_store`` every this many iterations (``0`` =
            off); see :mod:`repro.resilience`.
        checkpoint_store: The snapshot store; defaults to the
            process-default :class:`~repro.resilience.CheckpointStore`.
        checkpoint_key: The store key; defaults to the method name.
        resume: Warm-resume from any snapshot already stored under
            ``checkpoint_key`` before iterating.
        warm_from: A :class:`repro.incremental.WarmState` to realign
            from incrementally (methods with ``supports_warm`` only);
            see :mod:`repro.incremental`.
        keep_state: Ask the solver to attach its final message state to
            ``result.solver_state`` so a warm state can be captured
            from the result (methods with ``supports_warm`` only).

    Returns:
        The method's :class:`~repro.core.result.AlignmentResult`.

    Raises:
        ConfigurationError: Unknown method, bad config, or a
            ``parallel``/``trace``/checkpoint request against a method
            whose spec does not declare support for it — the facade
            raises rather than silently dropping the request.
    """
    spec = get_solver(method)
    cfg = _coerce_config(spec, config)
    kwargs: dict[str, Any] = {}
    if parallel is not None:
        if not spec.supports_parallel:
            raise ConfigurationError(
                f"method {spec.name!r} does not support parallel execution"
            )
        kwargs["parallel"] = parallel
    if trace is not None:
        if not spec.supports_trace:
            raise ConfigurationError(
                f"method {spec.name!r} does not support work tracing"
            )
        kwargs["tracer"] = trace
    if checkpoint_every > 0 or resume:
        if not spec.supports_checkpoint:
            raise ConfigurationError(
                f"method {spec.name!r} does not support checkpoint/resume"
            )
        if checkpoint_store is None:
            from repro.resilience import get_checkpoint_store

            checkpoint_store = get_checkpoint_store()
        kwargs["checkpoint_every"] = checkpoint_every
        kwargs["checkpoint_store"] = checkpoint_store
        kwargs["checkpoint_key"] = checkpoint_key or spec.name
        kwargs["resume"] = resume
    if warm_from is not None or keep_state:
        if not spec.supports_warm:
            raise ConfigurationError(
                f"method {spec.name!r} does not support warm "
                "realignment (warm_from/keep_state)"
            )
        if warm_from is not None:
            kwargs["warm_from"] = warm_from
        if keep_state:
            kwargs["keep_state"] = keep_state
    return spec.solve(problem, cfg, **kwargs)


def _bp_solve(problem, config, tracer=None, parallel=None, **extra):
    return belief_propagation_align(
        problem, config, tracer, parallel=parallel, **extra
    )


def _klau_solve(problem, config, tracer=None, **checkpointing):
    return klau_align(problem, config, tracer, **checkpointing)


def _isorank_solve(problem, config):
    return isorank_align(problem, config)


def _multilevel_solve(problem, config, tracer=None, parallel=None):
    return multilevel_align(problem, config, tracer, parallel=parallel)


register_solver(
    SolverSpec(
        name="bp",
        config_cls=BPConfig,
        solve=_bp_solve,
        supports_parallel=True,
        supports_trace=True,
        supports_checkpoint=True,
        supports_warm=True,
    )
)
register_solver(
    SolverSpec(
        name="klau",
        config_cls=KlauConfig,
        solve=_klau_solve,
        aliases=("mr",),
        supports_trace=True,
        supports_checkpoint=True,
    )
)
register_solver(
    SolverSpec(name="isorank", config_cls=IsoRankConfig, solve=_isorank_solve)
)
register_solver(
    SolverSpec(
        name="multilevel",
        config_cls=MultilevelConfig,
        solve=_multilevel_solve,
        supports_parallel=True,
        supports_trace=True,
    )
)
