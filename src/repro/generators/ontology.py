"""Ontology-alignment stand-ins for lcsh-wiki and lcsh-rameau (§VI-C).

The paper's ontology graphs are "a core hierarchical tree ... [with] many
cross edges for other types of relationships", aligned through a
text-matching L.  The stand-in mirrors that:

* a shared preferential-attachment taxonomy over the common concepts,
* per-ontology extra concepts and cross edges, a controlled number of
  which are *conserved* across the pair (these populate **S**),
* L built like a text matcher: a good-similarity edge for most shared
  concepts plus many low-similarity candidate edges per vertex, sized to
  the target |E_L|.

Full Table II sizes (|E_L| of 5M/21M) are reachable but slow in Python;
the default ``scale`` keeps benches tractable and every report states the
scale used.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.core.problem import NetworkAlignmentProblem
from repro.errors import ConfigurationError
from repro.generators.instance import AlignmentInstance
from repro.generators.powerlaw import preferential_attachment_tree
from repro.graph.graph import Graph
from repro.sparse.bipartite import BipartiteGraph

__all__ = ["ontology_instance", "lcsh_wiki", "lcsh_rameau"]


def _extend_taxonomy(
    tree: Graph,
    n_total: int,
    n_cross: int,
    extra_cross_u: np.ndarray,
    extra_cross_v: np.ndarray,
    rng: np.random.Generator,
) -> Graph:
    """Grow ``tree`` to ``n_total`` vertices and add cross edges."""
    n_shared = tree.n
    parents = []
    if n_total > n_shared:
        # New concepts attach under uniformly chosen existing concepts.
        parents = rng.integers(0, n_shared, n_total - n_shared)
    cross_u = rng.integers(0, n_total, n_cross)
    cross_v = rng.integers(0, n_total, n_cross)
    edge_u = np.concatenate(
        [tree.edge_u, np.asarray(parents, dtype=np.int64),
         extra_cross_u, cross_u]
    )
    edge_v = np.concatenate(
        [tree.edge_v, np.arange(n_shared, n_total, dtype=np.int64),
         extra_cross_v, cross_v]
    )
    return Graph.from_edges(n_total, edge_u, edge_v)


def ontology_instance(
    n_a: int,
    n_b: int,
    m_l_target: int,
    squares_target: int,
    *,
    label_coverage: float = 0.85,
    cross_fraction: float = 0.25,
    alpha: float = 1.0,
    beta: float = 2.0,
    seed: int | np.random.Generator | None = None,
    name: str = "ontology",
) -> AlignmentInstance:
    """Generate an ontology-alignment instance with prescribed sizes.

    ``label_coverage`` is the probability that a shared concept's labels
    actually text-match (produces its true L edge); ``cross_fraction``
    scales how many per-ontology random cross edges exist beyond the
    conserved ones.
    """
    if min(n_a, n_b) < 4:
        raise ConfigurationError("ontologies too small")
    if not (0 < label_coverage <= 1):
        raise ConfigurationError("label_coverage must be in (0, 1]")
    rng = as_rng(seed)
    n_shared = min(n_a, n_b)
    taxonomy = preferential_attachment_tree(n_shared, rng)

    # Conserved structure beyond the shared tree: enough conserved cross
    # edges that squares from true L pairs approach the target.  One
    # conserved edge whose endpoints both have true L edges yields one
    # square (two nonzeros of S).  Noise L edges incident on taxonomy
    # hubs add squares of their own, so after a first build we measure
    # nnz(S) and rebuild once with a corrected count (structure sizes are
    # targets, not promises — the bench reports what was generated).
    want_squares = squares_target / 2.0
    tree_part = (n_shared - 1) * label_coverage**2
    cov_sq = max(label_coverage**2, 1e-9)
    extra_conserved = max(0, int((want_squares - tree_part) / cov_sq))

    def build(n_extra: int) -> AlignmentInstance:
        sub_rng = np.random.default_rng(rng.integers(2**63))
        cons_u = sub_rng.integers(0, n_shared, n_extra)
        cons_v = sub_rng.integers(0, n_shared, n_extra)
        n_cross_a = int(cross_fraction * n_a)
        n_cross_b = int(cross_fraction * n_b)
        a_graph = _extend_taxonomy(
            taxonomy, n_a, n_cross_a, cons_u, cons_v, sub_rng
        )
        b_graph = _extend_taxonomy(
            taxonomy, n_b, n_cross_b, cons_u, cons_v, sub_rng
        )
        sigma = np.full(n_a, -1, dtype=np.int64)
        sigma[:n_shared] = np.arange(n_shared)
        covered = np.flatnonzero(sub_rng.random(n_shared) < label_coverage)
        true_w = sub_rng.uniform(0.5, 1.0, len(covered))
        n_noise = max(0, m_l_target - len(covered))
        noise_a = sub_rng.integers(0, n_a, n_noise)
        noise_b = sub_rng.integers(0, n_b, n_noise)
        noise_w = 0.5 * sub_rng.beta(1.2, 4.0, n_noise)
        ell = BipartiteGraph.from_edges(
            n_a,
            n_b,
            np.concatenate([covered, noise_a]),
            np.concatenate([covered, noise_b]),
            np.concatenate([true_w, noise_w]),
            dedup="max",
        )
        problem = NetworkAlignmentProblem(
            a_graph, b_graph, ell, alpha=alpha, beta=beta, name=name
        )
        return AlignmentInstance(problem=problem, true_mate_a=sigma)

    # Secant calibration on the planted-edge count: nnz(S) responds
    # almost linearly to it (each planted edge contributes its own square
    # plus hub-interaction squares), so two corrective rebuilds suffice.
    best: AlignmentInstance | None = None
    best_err = float("inf")
    points: list[tuple[int, int]] = []
    extra = extra_conserved
    for _ in range(3):
        instance = build(extra)
        measured = instance.problem.squares.nnz
        err = abs(measured - squares_target)
        if err < best_err:
            best, best_err = instance, err
        if err <= 0.2 * squares_target:
            return instance
        points.append((extra, measured))
        if len(points) >= 2 and points[-1][1] != points[-2][1]:
            (e1, m1), (e2, m2) = points[-2], points[-1]
            extra = int(e2 + (squares_target - m2) * (e2 - e1) / (m2 - m1))
        elif measured > 0:
            extra = int(extra * squares_target / measured)
        else:
            extra = max(1, 2 * extra)
        extra = max(0, extra)
    return best


def lcsh_wiki(
    *,
    scale: float = 0.02,
    seed: int | np.random.Generator | None = None,
    alpha: float = 1.0,
    beta: float = 2.0,
) -> AlignmentInstance:
    """Stand-in for LCSH ↔ Wikipedia categories (Table II row 3).

    Paper sizes: |V_A|=297,266, |V_B|=205,948, |E_L|=4,971,629,
    nnz(S)=1,785,310.  Defaults to ``scale=0.02``; pass ``scale=1.0`` for
    the full-size instance (slow in pure Python).
    """
    return ontology_instance(
        n_a=max(16, int(297266 * scale)),
        n_b=max(16, int(205948 * scale)),
        m_l_target=max(64, int(4971629 * scale)),
        squares_target=max(8, int(1785310 * scale)),
        seed=seed,
        alpha=alpha,
        beta=beta,
        name=f"lcsh-wiki@{scale:g}",
    )


def lcsh_rameau(
    *,
    scale: float = 0.01,
    seed: int | np.random.Generator | None = None,
    alpha: float = 1.0,
    beta: float = 2.0,
) -> AlignmentInstance:
    """Stand-in for LCSH ↔ Rameau (Table II row 4).

    Paper sizes: |V_A|=154,974, |V_B|=342,684, |E_L|=20,883,500,
    nnz(S)=4,929,272.  The densest instance (avg ~67 candidates per
    A-vertex); default scale is accordingly smaller.
    """
    return ontology_instance(
        n_a=max(16, int(154974 * scale)),
        n_b=max(16, int(342684 * scale)),
        m_l_target=max(64, int(20883500 * scale)),
        squares_target=max(8, int(4929272 * scale)),
        seed=seed,
        alpha=alpha,
        beta=beta,
        name=f"lcsh-rameau@{scale:g}",
    )
