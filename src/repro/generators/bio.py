"""PPI-alignment stand-ins matched to the paper's Table II sizes.

The paper's bioinformatics instances (dmela-scere from Singh et al.,
homo-musm from Klau) are used there "solely for the instances of a
network alignment problem"; the original L graphs and weights are not
redistributable here, so we synthesize instances with the same shape:

* power-law protein interaction graphs A and B,
* a hidden ortholog correspondence σ under which a controlled number of
  A-edges are conserved in B (these conserved edges are what populate the
  squares matrix **S**),
* a sequence-similarity-like L: one high-weight edge per ortholog pair
  plus low-weight noise candidates, sized to the target |E_L|.

The knobs are solved from the Table II targets (|V_A|, |V_B|, |E_L|,
nnz(S)); generated sizes land within a few percent and are reported by
the Table II bench.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.core.problem import NetworkAlignmentProblem
from repro.errors import ConfigurationError
from repro.generators.instance import AlignmentInstance
from repro.generators.powerlaw import powerlaw_graph
from repro.graph.graph import Graph
from repro.sparse.bipartite import BipartiteGraph

__all__ = ["bio_instance", "dmela_scere", "homo_musm"]


def bio_instance(
    n_a: int,
    n_b: int,
    m_l_target: int,
    squares_target: int,
    *,
    mean_degree: float = 5.5,
    decoy_fraction: float = 0.4,
    alpha: float = 1.0,
    beta: float = 2.0,
    seed: int | np.random.Generator | None = None,
    name: str = "bio",
) -> AlignmentInstance:
    """Generate a PPI-like alignment instance with prescribed sizes.

    ``squares_target`` is the desired nnz(S); conserved interactions are
    planted so that (true-pair) squares hit roughly half of it per
    direction (S is symmetric: one square = two nonzeros).

    ``decoy_fraction`` of the core proteins also get a *paralog decoy*
    candidate — an L edge from ``i`` to the ortholog of one of ``i``'s
    interaction partners, with sequence similarity comparable to the true
    pair's.  Real PPI alignment instances are ambiguous in exactly this
    way (gene duplications), and this ambiguity is what makes the
    weight/overlap trade-off of Fig. 3 non-trivial: resolving a decoy
    toward weight or toward overlap depends on (α, β).
    """
    if min(n_a, n_b) < 4:
        raise ConfigurationError("graphs too small for a bio instance")
    rng = as_rng(seed)
    a_graph = powerlaw_graph(
        n_a, exponent=2.2, d_min=1,
        d_max=max(4, int(mean_degree * np.sqrt(n_a) / 6)), seed=rng,
    )

    # Hidden ortholog map: a random subset of A onto distinct B vertices.
    n_core = min(n_a, n_b)
    core_a = rng.permutation(n_a)[:n_core]
    sigma = np.full(n_a, -1, dtype=np.int64)
    sigma[core_a] = rng.permutation(n_b)[:n_core]

    # Conserved interactions: A-edges with both endpoints in the core,
    # copied into B under σ.  If the power-law A is too sparse to supply
    # enough conserved candidates, densify it with extra random edges
    # among core vertices first (keeps nnz(S) on target).
    need = max(0, squares_target // 2)
    mapped = sigma[a_graph.edge_u] >= 0
    both = mapped & (sigma[a_graph.edge_v] >= 0)
    if int(both.sum()) < need:
        deficit = int(1.2 * (need - int(both.sum()))) + 4
        extra_u = core_a[rng.integers(0, n_core, deficit)]
        extra_v = core_a[rng.integers(0, n_core, deficit)]
        a_graph = Graph.from_edges(
            n_a,
            np.concatenate([a_graph.edge_u, extra_u]),
            np.concatenate([a_graph.edge_v, extra_v]),
        )
        mapped = sigma[a_graph.edge_u] >= 0
        both = mapped & (sigma[a_graph.edge_v] >= 0)
    candidates = np.flatnonzero(both)
    n_conserved = min(len(candidates), need)
    chosen = rng.choice(candidates, size=n_conserved, replace=False)
    cons_u = sigma[a_graph.edge_u[chosen]]
    cons_v = sigma[a_graph.edge_v[chosen]]

    # Fill B with its own power-law noise to a comparable density.
    filler = powerlaw_graph(
        n_b, exponent=2.2, d_min=1,
        d_max=max(4, int(mean_degree * np.sqrt(n_b) / 6)), seed=rng,
    )
    b_graph = Graph.from_edges(
        n_b,
        np.concatenate([cons_u, filler.edge_u]),
        np.concatenate([cons_v, filler.edge_v]),
    )

    # L: ortholog edges (high similarity) + paralog decoys + noise.
    true_a = core_a
    true_b = sigma[core_a]
    true_w = rng.uniform(0.6, 1.0, n_core)
    decoy_a_list = []
    decoy_b_list = []
    n_decoys_wanted = int(decoy_fraction * n_core)
    if n_decoys_wanted:
        cand = rng.choice(core_a, size=n_decoys_wanted, replace=False)
        for i in cand.tolist():
            nbrs = a_graph.neighbors(i)
            nbrs = nbrs[sigma[nbrs] >= 0]
            if len(nbrs):
                j = int(nbrs[rng.integers(len(nbrs))])
                decoy_a_list.append(i)
                decoy_b_list.append(int(sigma[j]))
    decoy_a = np.array(decoy_a_list, dtype=np.int64)
    decoy_b = np.array(decoy_b_list, dtype=np.int64)
    decoy_w = rng.uniform(0.5, 0.95, len(decoy_a))
    n_noise = max(0, m_l_target - n_core - len(decoy_a))
    noise_a = rng.integers(0, n_a, n_noise)
    noise_b = rng.integers(0, n_b, n_noise)
    noise_w = 0.6 * rng.beta(1.0, 3.0, n_noise)
    ell = BipartiteGraph.from_edges(
        n_a,
        n_b,
        np.concatenate([true_a, decoy_a, noise_a]),
        np.concatenate([true_b, decoy_b, noise_b]),
        np.concatenate([true_w, decoy_w, noise_w]),
        dedup="max",
    )
    problem = NetworkAlignmentProblem(
        a_graph, b_graph, ell, alpha=alpha, beta=beta, name=name
    )
    return AlignmentInstance(problem=problem, true_mate_a=sigma)


def dmela_scere(
    *,
    scale: float = 1.0,
    seed: int | np.random.Generator | None = None,
    alpha: float = 1.0,
    beta: float = 2.0,
) -> AlignmentInstance:
    """Stand-in for the fly–yeast instance (Table II row 1).

    Paper sizes: |V_A|=9,459, |V_B|=5,696, |E_L|=34,582, nnz(S)=6,860.
    ``scale`` shrinks every dimension proportionally for quick runs.
    """
    return bio_instance(
        n_a=max(8, int(9459 * scale)),
        n_b=max(8, int(5696 * scale)),
        m_l_target=max(16, int(34582 * scale)),
        squares_target=max(4, int(6860 * scale)),
        seed=seed,
        alpha=alpha,
        beta=beta,
        name=f"dmela-scere{'' if scale == 1.0 else f'@{scale:g}'}",
    )


def homo_musm(
    *,
    scale: float = 1.0,
    seed: int | np.random.Generator | None = None,
    alpha: float = 1.0,
    beta: float = 2.0,
) -> AlignmentInstance:
    """Stand-in for the human–mouse instance (Table II row 2).

    Paper sizes: |V_A|=3,247, |V_B|=9,695, |E_L|=15,810, nnz(S)=12,180.
    """
    return bio_instance(
        n_a=max(8, int(3247 * scale)),
        n_b=max(8, int(9695 * scale)),
        m_l_target=max(16, int(15810 * scale)),
        squares_target=max(4, int(12180 * scale)),
        seed=seed,
        alpha=alpha,
        beta=beta,
        name=f"homo-musm{'' if scale == 1.0 else f'@{scale:g}'}",
    )
