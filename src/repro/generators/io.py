"""SMAT-style text I/O, compatible with the netalign data layout.

The original netalign codes distribute problems as sparse-matrix text
files: a header line ``n_rows n_cols nnz`` followed by ``row col value``
triplets (0-indexed).  An alignment problem is three such files — A, B,
and L — which is what :func:`load_alignment_problem` consumes, so real
datasets (e.g. the original dmela-scere files) can be plugged into this
reproduction unchanged.
"""

from __future__ import annotations

import os
from typing import TextIO

import numpy as np

from repro.core.problem import NetworkAlignmentProblem
from repro.errors import ValidationError
from repro.graph.graph import Graph
from repro.sparse.bipartite import BipartiteGraph

__all__ = [
    "write_smat",
    "read_smat",
    "write_graph",
    "read_graph",
    "write_bipartite",
    "read_bipartite",
    "load_alignment_problem",
    "save_alignment_problem",
]


def write_smat(
    fh: TextIO,
    n_rows: int,
    n_cols: int,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
) -> None:
    """Write one SMAT section: header then ``row col value`` triplets."""
    fh.write(f"{n_rows} {n_cols} {len(rows)}\n")
    for r, c, v in zip(rows.tolist(), cols.tolist(), vals.tolist()):
        fh.write(f"{r} {c} {v:.17g}\n")


def read_smat(fh: TextIO) -> tuple[int, int, np.ndarray, np.ndarray, np.ndarray]:
    """Read one SMAT section; returns (n_rows, n_cols, rows, cols, vals)."""
    header = fh.readline().split()
    if len(header) != 3:
        raise ValidationError(f"bad SMAT header: {header!r}")
    n_rows, n_cols, nnz = (int(x) for x in header)
    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    for i in range(nnz):
        parts = fh.readline().split()
        if len(parts) != 3:
            raise ValidationError(f"bad SMAT triplet at entry {i}")
        rows[i] = int(parts[0])
        cols[i] = int(parts[1])
        vals[i] = float(parts[2])
    return n_rows, n_cols, rows, cols, vals


def write_graph(path: str, graph: Graph) -> None:
    """Write an undirected graph as a symmetric SMAT file."""
    with open(path, "w") as fh:
        rows = np.concatenate([graph.edge_u, graph.edge_v])
        cols = np.concatenate([graph.edge_v, graph.edge_u])
        write_smat(fh, graph.n, graph.n, rows, cols, np.ones(len(rows)))


def read_graph(path: str) -> Graph:
    """Read an undirected graph from a (possibly symmetric) SMAT file."""
    with open(path) as fh:
        n_rows, n_cols, rows, cols, _ = read_smat(fh)
    if n_rows != n_cols:
        raise ValidationError("graph SMAT must be square")
    return Graph.from_edges(n_rows, rows, cols)


def write_bipartite(path: str, ell: BipartiteGraph) -> None:
    """Write a weighted bipartite graph L as an SMAT file."""
    with open(path, "w") as fh:
        write_smat(fh, ell.n_a, ell.n_b, ell.edge_a, ell.edge_b, ell.weights)


def read_bipartite(path: str) -> BipartiteGraph:
    """Read a weighted bipartite graph L from an SMAT file."""
    with open(path) as fh:
        n_a, n_b, rows, cols, vals = read_smat(fh)
    return BipartiteGraph.from_edges(n_a, n_b, rows, cols, vals)


def save_alignment_problem(
    directory: str, problem: NetworkAlignmentProblem
) -> None:
    """Write A.smat, B.smat, L.smat into ``directory``."""
    os.makedirs(directory, exist_ok=True)
    write_graph(os.path.join(directory, "A.smat"), problem.a_graph)
    write_graph(os.path.join(directory, "B.smat"), problem.b_graph)
    write_bipartite(os.path.join(directory, "L.smat"), problem.ell)


def load_alignment_problem(
    directory: str,
    alpha: float = 1.0,
    beta: float = 2.0,
    name: str | None = None,
) -> NetworkAlignmentProblem:
    """Load A.smat, B.smat, L.smat from ``directory``."""
    a_graph = read_graph(os.path.join(directory, "A.smat"))
    b_graph = read_graph(os.path.join(directory, "B.smat"))
    ell = read_bipartite(os.path.join(directory, "L.smat"))
    return NetworkAlignmentProblem(
        a_graph,
        b_graph,
        ell,
        alpha=alpha,
        beta=beta,
        name=name or os.path.basename(os.path.normpath(directory)),
    )
