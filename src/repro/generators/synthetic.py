"""The §VI-A synthetic power-law quality instances.

Recipe, verbatim from the paper:

1. G = 400-node random power-law graph (degree distribution sampled, then
   a random graph with that prescribed distribution).
2. A and B = G with edges added independently with probability 0.02.
3. L = the identity matching plus every possible (i, j) pair sampled with
   probability ``p`` expressed as the expected degree ``d̄ = p · |V_A|``.

The identity matching is the reference point; it "may not be the optimal
alignment" for large d̄ (the paper observes objectives exceeding it for
d̄ > 10).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.core.problem import NetworkAlignmentProblem
from repro.errors import ConfigurationError
from repro.generators.instance import AlignmentInstance
from repro.generators.perturb import add_random_edges
from repro.generators.powerlaw import powerlaw_graph
from repro.sparse.bipartite import BipartiteGraph

__all__ = ["powerlaw_alignment_instance"]


def powerlaw_alignment_instance(
    n: int = 400,
    expected_degree: float = 5.0,
    p_perturb: float = 0.02,
    exponent: float = 2.1,
    d_min: int = 3,
    d_max: int | None = 40,
    alpha: float = 1.0,
    beta: float = 2.0,
    seed: int | np.random.Generator | None = None,
    name: str | None = None,
) -> AlignmentInstance:
    """Generate one §VI-A instance.

    Parameters
    ----------
    n:
        Vertices in the base graph G (the paper uses 400).
    expected_degree:
        d̄, the expected number of random L edges per vertex; the sweep in
        Fig. 2 runs d̄ from 2 to 20.
    p_perturb:
        Edge-addition probability producing A and B from G (paper: 0.02).
    exponent, d_min, d_max:
        Power-law parameters of G's degree distribution.  The paper does
        not state them; the defaults give mean degree ≈ 7, for which the
        perturbation (~0.02·C(n,2) ≈ 1600 random edges at n=400) is a
        moderate corruption of G: the planted identity is recoverable by
        the exact methods across the whole d̄ sweep while approximate
        rounding measurably degrades Klau's method — the paper's Fig. 2
        regime.  A much sparser G drowns in the perturbation (no method,
        nor the reference point itself, is meaningful); a much denser one
        makes every variant trivially perfect.
    alpha, beta:
        Objective weights (Fig. 2 uses α=1, β=2).
    """
    if expected_degree < 0 or expected_degree > n:
        raise ConfigurationError("expected_degree must be in [0, n]")
    rng = as_rng(seed)
    base = powerlaw_graph(
        n, exponent=exponent, d_min=d_min, d_max=d_max, seed=rng
    )
    a_graph = add_random_edges(base, p_perturb, rng)
    b_graph = add_random_edges(base, p_perturb, rng)

    # L: identity + uniform noise with expected degree d̄.
    ident = np.arange(n, dtype=np.int64)
    p_noise = expected_degree / n
    noise_mask = rng.random((n, n)) < p_noise if n <= 2048 else None
    if noise_mask is not None:
        noise_a, noise_b = np.nonzero(noise_mask)
    else:  # larger-than-paper instances: sample sparse noise directly
        n_noise = int(rng.binomial(n * n, p_noise))
        noise_a = rng.integers(0, n, n_noise)
        noise_b = rng.integers(0, n, n_noise)
    edge_a = np.concatenate([ident, noise_a])
    edge_b = np.concatenate([ident, noise_b])
    ell = BipartiteGraph.from_edges(
        n, n, edge_a, edge_b, np.ones(len(edge_a)), dedup="first"
    )
    problem = NetworkAlignmentProblem(
        a_graph,
        b_graph,
        ell,
        alpha=alpha,
        beta=beta,
        name=name or f"powerlaw-n{n}-d{expected_degree:g}",
    )
    return AlignmentInstance(problem=problem, true_mate_a=ident.copy())
