"""Problem-instance generators for the paper's three evaluation families.

* :mod:`~repro.generators.powerlaw` — power-law random graphs (§VI-A's
  substrate, after Barabási–Albert-style degree distributions).
* :mod:`~repro.generators.synthetic` — the §VI-A quality instances:
  perturb a common power-law graph G into A and B, and build L from the
  identity matching plus expected-degree-d̄ random noise.
* :mod:`~repro.generators.bio` — PPI-like stand-ins matched to the
  Table II sizes of dmela-scere and homo-musm.
* :mod:`~repro.generators.ontology` — hierarchical-ontology stand-ins for
  lcsh-wiki and lcsh-rameau, with a ``scale`` knob.
* :mod:`~repro.generators.io` — SMAT-style text I/O for plugging in real
  data.
"""

from repro.generators.instance import AlignmentInstance
from repro.generators.bio import bio_instance, dmela_scere, homo_musm
from repro.generators.ontology import lcsh_rameau, lcsh_wiki, ontology_instance
from repro.generators.powerlaw import (
    powerlaw_graph,
    preferential_attachment_tree,
    sample_powerlaw_degrees,
)
from repro.generators.synthetic import powerlaw_alignment_instance

__all__ = [
    "AlignmentInstance",
    "bio_instance",
    "dmela_scere",
    "homo_musm",
    "lcsh_rameau",
    "lcsh_wiki",
    "ontology_instance",
    "powerlaw_alignment_instance",
    "powerlaw_graph",
    "preferential_attachment_tree",
    "sample_powerlaw_degrees",
]
