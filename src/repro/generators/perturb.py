"""Graph perturbations used when deriving A and B from a common G (§VI-A).

Beyond the paper's static A/B derivation, this module is the shared
perturbation path for the *incremental* scenario: :func:`perturb_weights`
jitters a seeded fraction of L's similarity scores, and
:func:`edit_script` samples a full reusable
:class:`~repro.incremental.ProblemDelta` (L and graph edge churn plus
weight drift) so benchmarks and tests perturb problems identically.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.errors import ConfigurationError
from repro.graph.graph import Graph
from repro.sparse.bipartite import BipartiteGraph

__all__ = [
    "add_random_edges",
    "drop_random_edges",
    "edit_script",
    "perturb_weights",
    "relabel",
]


def add_random_edges(
    graph: Graph, p: float, seed: int | np.random.Generator | None = None
) -> Graph:
    """Add each absent vertex pair as an edge independently w.p. ``p``.

    This is the §VI-A perturbation ("randomly add edges with probability
    0.02").  Sampling is done by drawing the number of added pairs from a
    binomial over all C(n,2) pairs and then sampling pair keys without
    replacement — O(added) rather than O(n²) memory.
    """
    if not (0.0 <= p <= 1.0):
        raise ConfigurationError("p must be a probability")
    rng = as_rng(seed)
    n = graph.n
    total_pairs = n * (n - 1) // 2
    if total_pairs == 0 or p == 0.0:
        return graph
    n_new = int(rng.binomial(total_pairs, p))
    if n_new == 0:
        return graph
    # Sample distinct pair keys; key k encodes the pair via triangular
    # indexing.  Oversample to absorb collisions with existing edges.
    keys = rng.choice(total_pairs, size=min(total_pairs, n_new), replace=False)
    u, v = _pair_from_key(keys, n)
    return Graph.from_edges(
        n,
        np.concatenate([graph.edge_u, u]),
        np.concatenate([graph.edge_v, v]),
    )


def _pair_from_key(keys: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Invert triangular indexing: key → (u, v) with u < v."""
    # key = u*n - u*(u+1)/2 + (v - u - 1) for 0 <= u < v < n.
    keys = np.asarray(keys, dtype=np.int64)
    u = np.floor(
        (2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * keys.astype(np.float64)))
        / 2
    ).astype(np.int64)
    np.clip(u, 0, n - 2, out=u)

    def base(row: np.ndarray) -> np.ndarray:
        return row * n - row * (row + 1) // 2

    # One-step correction for floating-point boundary errors.
    u = np.where((u + 1 <= n - 2) & (base(u + 1) <= keys), u + 1, u)
    u = np.where(base(u) > keys, u - 1, u)
    v = (keys - base(u)) + u + 1
    return u, v


def drop_random_edges(
    graph: Graph, p: float, seed: int | np.random.Generator | None = None
) -> Graph:
    """Remove each edge independently with probability ``p``."""
    if not (0.0 <= p <= 1.0):
        raise ConfigurationError("p must be a probability")
    rng = as_rng(seed)
    keep = rng.random(graph.m) >= p
    return Graph(graph.n, graph.edge_u[keep], graph.edge_v[keep])


def relabel(
    graph: Graph, permutation: np.ndarray
) -> Graph:
    """Return the graph with vertex ids mapped through ``permutation``."""
    perm = np.asarray(permutation, dtype=np.int64)
    if sorted(perm.tolist()) != list(range(graph.n)):
        raise ConfigurationError("not a permutation of the vertex set")
    return Graph.from_edges(graph.n, perm[graph.edge_u], perm[graph.edge_v])


def perturb_weights(
    ell: BipartiteGraph,
    p: float,
    *,
    scale: float = 0.5,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Return L's weight vector with a seeded fraction ``p`` jittered.

    Each edge is selected independently with probability ``p``; selected
    weights get a multiplicative jitter ``w · (1 + scale · U(-1, 1))``
    clipped at 0 (the problem validator rejects negative similarities).
    Unselected weights are returned verbatim, so diffing the result
    against ``ell.weights`` recovers exactly the perturbed set —
    :func:`edit_script` relies on that.
    """
    if not (0.0 <= p <= 1.0):
        raise ConfigurationError("p must be a probability")
    if scale < 0:
        raise ConfigurationError("scale must be >= 0")
    rng = as_rng(seed)
    w = ell.weights.copy()
    picked = np.flatnonzero(rng.random(ell.n_edges) < p)
    if len(picked):
        jitter = 1.0 + scale * rng.uniform(-1.0, 1.0, size=len(picked))
        w[picked] = np.maximum(w[picked] * jitter, 0.0)
    return w


def edit_script(
    problem,
    *,
    l_edge_rate: float = 0.0,
    weight_rate: float = 0.0,
    graph_edge_rate: float = 0.0,
    weight_scale: float = 0.5,
    seed: int | np.random.Generator | None = None,
):
    """Sample a reusable :class:`~repro.incremental.ProblemDelta`.

    One seeded perturbation path shared by the incremental benchmarks
    and the property tests: applying the returned delta to ``problem``
    simulates graph drift at the given rates.

    Args:
        problem: The :class:`~repro.core.problem.NetworkAlignmentProblem`
            to perturb (only read, never modified).
        l_edge_rate: Fraction of L edges churned — half the rate drops
            existing edges, and the same expected count of fresh ``(a,
            b)`` pairs (at the mean surviving weight) is inserted.
        weight_rate: Fraction of surviving L edges whose weight is
            jittered via :func:`perturb_weights`.
        graph_edge_rate: Edge churn rate applied to A and B alike (half
            drops, matched-count inserts).
        weight_scale: Jitter magnitude passed to :func:`perturb_weights`.
        seed: Seed or generator; the script is a pure function of it.

    Returns:
        A validated, immediately applicable
        :class:`~repro.incremental.ProblemDelta`.
    """
    from repro.incremental.delta import ProblemDelta

    for name, rate in (("l_edge_rate", l_edge_rate),
                       ("weight_rate", weight_rate),
                       ("graph_edge_rate", graph_edge_rate)):
        if not (0.0 <= rate <= 1.0):
            raise ConfigurationError(f"{name} must be a probability")
    rng = as_rng(seed)
    ell = problem.ell
    m = ell.n_edges

    drop_mask = rng.random(m) < l_edge_rate / 2.0
    drop_ids = np.flatnonzero(drop_mask)
    l_drop = np.stack([ell.edge_a[drop_ids], ell.edge_b[drop_ids]], axis=1)

    # Matched-count inserts: sample fresh (a, b) pairs not in L (and not
    # just dropped), at the mean surviving weight.
    n_add = int(drop_mask.sum()) if m else 0
    survivors = ~drop_mask
    mean_w = float(ell.weights[survivors].mean()) if survivors.any() else 1.0
    add_pairs: list[tuple[int, int]] = []
    taken = set(zip(ell.edge_a.tolist(), ell.edge_b.tolist()))
    attempts = 0
    while len(add_pairs) < n_add and attempts < 50 * max(n_add, 1):
        attempts += 1
        pair = (int(rng.integers(0, ell.n_a)), int(rng.integers(0, ell.n_b)))
        if pair not in taken:
            taken.add(pair)
            add_pairs.append(pair)
    l_add = [(a, b, mean_w) for a, b in add_pairs]

    # Weight drift on survivors, via the shared jitter helper.
    w_new = perturb_weights(ell, weight_rate, scale=weight_scale, seed=rng)
    rw_ids = np.flatnonzero((w_new != ell.weights) & survivors)
    l_reweight = [
        (int(ell.edge_a[e]), int(ell.edge_b[e]), float(w_new[e]))
        for e in rw_ids
    ]

    def graph_churn(graph: Graph):
        gdrop_mask = rng.random(graph.m) < graph_edge_rate / 2.0
        gdrop = [
            (int(graph.edge_u[e]), int(graph.edge_v[e]))
            for e in np.flatnonzero(gdrop_mask)
        ]
        gadd: list[tuple[int, int]] = []
        # Inserts must avoid every *original* edge (re-adding a dropped
        # edge in the same delta is rejected as a conflicting edit).
        present = set(zip(graph.edge_u.tolist(), graph.edge_v.tolist()))
        tries = 0
        while len(gadd) < len(gdrop) and tries < 50 * max(len(gdrop), 1):
            tries += 1
            u, v = rng.integers(0, graph.n, size=2).tolist()
            if u == v:
                continue
            pair = (min(u, v), max(u, v))
            if pair not in present:
                present.add(pair)
                gadd.append(pair)
        return gadd, gdrop

    a_add, a_drop = graph_churn(problem.a_graph)
    b_add, b_drop = graph_churn(problem.b_graph)
    return ProblemDelta.build(
        l_add=l_add,
        l_drop=l_drop.tolist(),
        l_reweight=l_reweight,
        a_add=a_add,
        a_drop=a_drop,
        b_add=b_add,
        b_drop=b_drop,
    )
