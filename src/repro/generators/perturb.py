"""Graph perturbations used when deriving A and B from a common G (§VI-A)."""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.errors import ConfigurationError
from repro.graph.graph import Graph

__all__ = ["add_random_edges", "relabel", "drop_random_edges"]


def add_random_edges(
    graph: Graph, p: float, seed: int | np.random.Generator | None = None
) -> Graph:
    """Add each absent vertex pair as an edge independently w.p. ``p``.

    This is the §VI-A perturbation ("randomly add edges with probability
    0.02").  Sampling is done by drawing the number of added pairs from a
    binomial over all C(n,2) pairs and then sampling pair keys without
    replacement — O(added) rather than O(n²) memory.
    """
    if not (0.0 <= p <= 1.0):
        raise ConfigurationError("p must be a probability")
    rng = as_rng(seed)
    n = graph.n
    total_pairs = n * (n - 1) // 2
    if total_pairs == 0 or p == 0.0:
        return graph
    n_new = int(rng.binomial(total_pairs, p))
    if n_new == 0:
        return graph
    # Sample distinct pair keys; key k encodes the pair via triangular
    # indexing.  Oversample to absorb collisions with existing edges.
    keys = rng.choice(total_pairs, size=min(total_pairs, n_new), replace=False)
    u, v = _pair_from_key(keys, n)
    return Graph.from_edges(
        n,
        np.concatenate([graph.edge_u, u]),
        np.concatenate([graph.edge_v, v]),
    )


def _pair_from_key(keys: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Invert triangular indexing: key → (u, v) with u < v."""
    # key = u*n - u*(u+1)/2 + (v - u - 1) for 0 <= u < v < n.
    keys = np.asarray(keys, dtype=np.int64)
    u = np.floor(
        (2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * keys.astype(np.float64)))
        / 2
    ).astype(np.int64)
    np.clip(u, 0, n - 2, out=u)

    def base(row: np.ndarray) -> np.ndarray:
        return row * n - row * (row + 1) // 2

    # One-step correction for floating-point boundary errors.
    u = np.where((u + 1 <= n - 2) & (base(u + 1) <= keys), u + 1, u)
    u = np.where(base(u) > keys, u - 1, u)
    v = (keys - base(u)) + u + 1
    return u, v


def drop_random_edges(
    graph: Graph, p: float, seed: int | np.random.Generator | None = None
) -> Graph:
    """Remove each edge independently with probability ``p``."""
    if not (0.0 <= p <= 1.0):
        raise ConfigurationError("p must be a probability")
    rng = as_rng(seed)
    keep = rng.random(graph.m) >= p
    return Graph(graph.n, graph.edge_u[keep], graph.edge_v[keep])


def relabel(
    graph: Graph, permutation: np.ndarray
) -> Graph:
    """Return the graph with vertex ids mapped through ``permutation``."""
    perm = np.asarray(permutation, dtype=np.int64)
    if sorted(perm.tolist()) != list(range(graph.n)):
        raise ConfigurationError("not a permutation of the vertex set")
    return Graph.from_edges(graph.n, perm[graph.edge_u], perm[graph.edge_v])
