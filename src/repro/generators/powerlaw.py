"""Power-law random graphs (§VI-A's substrate).

The paper: *"To produce G, we first sampled a power-law degree
distribution and then generated a random graph with that prescribed
degree distribution"* — i.e. a configuration model on power-law degrees,
"to approximate the structure of most modern information networks"
(Barabási–Albert).  We implement exactly that, plus a preferential-
attachment tree used by the ontology generator.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.errors import ConfigurationError
from repro.graph.graph import Graph

__all__ = [
    "sample_powerlaw_degrees",
    "powerlaw_graph",
    "configuration_model",
    "preferential_attachment_tree",
]


def sample_powerlaw_degrees(
    n: int,
    exponent: float = 2.5,
    d_min: int = 1,
    d_max: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sample ``n`` degrees from ``P(d) ∝ d^(-exponent)`` on [d_min, d_max].

    The sum is forced even (configuration-model requirement) by bumping
    one degree if needed.
    """
    if n < 0:
        raise ConfigurationError("n must be non-negative")
    if exponent <= 1.0:
        raise ConfigurationError("exponent must exceed 1")
    if d_min < 1:
        raise ConfigurationError("d_min must be >= 1")
    rng = as_rng(seed)
    if d_max is None:
        d_max = max(d_min, int(np.sqrt(max(n, 1))))
    support = np.arange(d_min, d_max + 1, dtype=np.float64)
    pmf = support ** (-exponent)
    pmf /= pmf.sum()
    degrees = rng.choice(
        np.arange(d_min, d_max + 1), size=n, p=pmf
    ).astype(np.int64)
    if degrees.sum() % 2 == 1:
        degrees[int(rng.integers(n))] += 1
    return degrees


def configuration_model(
    degrees: np.ndarray, seed: int | np.random.Generator | None = None
) -> Graph:
    """Simple-graph configuration model: pair stubs, drop loops/multi-edges.

    The realized degrees are therefore at most the prescribed ones — the
    standard erased configuration model.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    n = len(degrees)
    if degrees.sum() % 2 != 0:
        raise ConfigurationError("degree sum must be even")
    rng = as_rng(seed)
    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    half = len(stubs) // 2
    return Graph.from_edges(n, stubs[:half], stubs[half:])


def powerlaw_graph(
    n: int,
    exponent: float = 2.5,
    d_min: int = 1,
    d_max: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Power-law degree distribution + configuration model, in one call."""
    rng = as_rng(seed)
    degrees = sample_powerlaw_degrees(n, exponent, d_min, d_max, rng)
    return configuration_model(degrees, rng)


def preferential_attachment_tree(
    n: int, seed: int | np.random.Generator | None = None
) -> Graph:
    """Random recursive tree with preferential attachment.

    Vertex ``k`` attaches to an earlier vertex chosen with probability
    proportional to (1 + degree); produces the heavy-tailed hierarchy
    characteristic of subject-heading taxonomies.
    """
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    rng = as_rng(seed)
    if n == 1:
        return Graph.from_edges(1, np.empty(0, np.int64), np.empty(0, np.int64))
    parents = np.empty(n - 1, dtype=np.int64)
    # Standard trick: grow a flat endpoint list; uniform draws from it
    # realize the (1 + degree)-proportional attachment kernel.
    endpoints = np.empty(2 * n - 1, dtype=np.int64)
    endpoints[0] = 0
    size = 1
    for k in range(1, n):
        parent = int(endpoints[int(rng.integers(size))])
        parents[k - 1] = parent
        endpoints[size] = parent
        endpoints[size + 1] = k
        size += 2
    children = np.arange(1, n, dtype=np.int64)
    return Graph.from_edges(n, parents, children)
