"""Container coupling a problem with its planted reference alignment."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import NetworkAlignmentProblem

__all__ = ["AlignmentInstance"]


@dataclass
class AlignmentInstance:
    """A generated alignment problem plus ground truth, when one exists.

    ``true_mate_a[i]`` is the planted B-partner of A-vertex ``i`` or ``-1``
    (identity for §VI-A synthetics; the hidden correspondence for the bio
    and ontology stand-ins).
    """

    problem: NetworkAlignmentProblem
    true_mate_a: np.ndarray | None = None

    def reference_indicator(self) -> np.ndarray:
        """Indicator vector of the reference alignment over L's edges.

        Reference pairs missing from L are silently skipped (they cannot
        be part of any feasible solution).
        """
        if self.true_mate_a is None:
            raise ValueError("instance has no reference alignment")
        ell = self.problem.ell
        matched = np.flatnonzero(self.true_mate_a >= 0)
        eids = ell.lookup_edges(matched, self.true_mate_a[matched])
        eids = eids[eids >= 0]
        x = np.zeros(ell.n_edges)
        x[eids] = 1.0
        return x

    def reference_objective(self) -> float:
        """Objective value of the reference alignment."""
        return self.problem.objective(self.reference_indicator())

    def fraction_correct(self, mate_a: np.ndarray) -> float:
        """Fraction of reference pairs recovered by ``mate_a``."""
        if self.true_mate_a is None:
            raise ValueError("instance has no reference alignment")
        known = self.true_mate_a >= 0
        if not known.any():
            return 0.0
        return float(
            (mate_a[known] == self.true_mate_a[known]).mean()
        )
